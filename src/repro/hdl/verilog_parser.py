"""Verilog reader for the toolkit's synthesizable subset.

Parses the Verilog-2001 dialect that :func:`repro.hdl.verilog.to_verilog`
emits (and hand-written code in the same shape): module/port/net
declarations, continuous ``assign`` statements over the expression
grammar, one synchronous ``always @(posedge clk)`` block with the
``if (rst) ... else ...`` reset idiom, and module instances.  Round-trip
(``parse(emit(m))``) is tested to preserve semantics, which makes ``.v``
files a real interchange format for the flow and the CLI.

The expression parser is precedence-climbing over the operators the
emitter produces: ``?:``, ``| ^ &``, equality/relational, shifts,
add/sub, mul, unary ``~ - & | ^``, concatenation, bit selects and
sized literals (``8'd255``, ``4'hF``, ``3'b101``).
"""

from __future__ import annotations

import re

from .ir import (
    BinOp,
    Cat,
    Const,
    Expr,
    HdlError,
    Module,
    Mux,
    Ref,
    Signal,
    Slice,
    UnaryOp,
)


class VerilogParseError(Exception):
    """Raised for Verilog outside the supported subset."""


_TOKEN = re.compile(
    r"\d+'[bdh][0-9a-fA-F_]+"  # sized literal
    r"|[a-zA-Z_][a-zA-Z0-9_$]*"  # identifier
    r"|\d+"  # plain number
    r"|<=|==|!=|<<|>>|>=|[(){}\[\]:;,.@?~^&|*+\-<>=!/]",
)

_KEYWORDS = {
    "module", "endmodule", "input", "output", "wire", "reg", "assign",
    "always", "posedge", "begin", "end", "if", "else",
}

#: Binary operators by precedence level (low to high), all left-assoc.
_PRECEDENCE: list[dict[str, str]] = [
    {"|": "or"},
    {"^": "xor"},
    {"&": "and"},
    {"==": "eq", "!=": "ne"},
    {"<": "lt", "<=": "le", ">": "gt", ">=": "ge"},
    {"<<": "shl", ">>": "shr"},
    {"+": "add", "-": "sub"},
    {"*": "mul"},
]


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


class _Tokens:
    def __init__(self, text: str):
        self.tokens = _TOKEN.findall(_strip_comments(text))
        self.pos = 0

    def peek(self, offset: int = 0) -> str | None:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> str:
        if self.pos >= len(self.tokens):
            raise VerilogParseError("unexpected end of file")
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise VerilogParseError(f"expected {token!r}, got {got!r}")

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.pos += 1
            return True
        return False


def _parse_literal(token: str) -> Const:
    width_txt, _, rest = token.partition("'")
    base, digits = rest[0], rest[1:].replace("_", "")
    value = int(digits, {"b": 2, "d": 10, "h": 16}[base])
    return Const(value, int(width_txt))


class _ModuleParser:
    def __init__(self, tokens: _Tokens, known: dict[str, Module]):
        self.tokens = tokens
        self.known = known
        self.module: Module | None = None
        self.widths: dict[str, int] = {}
        self.kinds: dict[str, str] = {}  # input/output/wire/reg
        self.assigns: list[tuple[str, Expr]] = []
        self.reg_updates: dict[str, tuple[int, Expr]] = {}  # reset, next
        self.instances: list[tuple[str, str, dict[str, str]]] = []

    # -- declarations -----------------------------------------------------

    def parse(self) -> Module:
        t = self.tokens
        t.expect("module")
        name = t.next()
        t.expect("(")
        port_order: list[str] = []
        while not t.accept(")"):
            token = t.next()
            if token != ",":
                port_order.append(token)
        t.expect(";")

        while t.peek() != "endmodule":
            keyword = t.peek()
            if keyword in ("input", "output", "wire", "reg"):
                self._declaration()
            elif keyword == "assign":
                self._assign()
            elif keyword == "always":
                self._always()
            else:
                self._instance()
        t.expect("endmodule")
        return self._build(name, port_order)

    def _range_width(self) -> int:
        t = self.tokens
        if not t.accept("["):
            return 1
        hi = int(t.next())
        t.expect(":")
        lo = int(t.next())
        t.expect("]")
        return hi - lo + 1

    def _declaration(self) -> None:
        t = self.tokens
        kind = t.next()
        width = self._range_width()
        while True:
            name = t.next()
            self.widths[name] = width
            # reg overrides wire kind; clk/rst stay implicit inputs.
            if name not in ("clk", "rst"):
                self.kinds[name] = kind
            if t.accept(";"):
                break
            t.expect(",")

    def _assign(self) -> None:
        t = self.tokens
        t.expect("assign")
        target = t.next()
        t.expect("=")
        expr = self._expression()
        t.expect(";")
        self.assigns.append((target, expr))

    def _always(self) -> None:
        t = self.tokens
        for token in ("always", "@", "(", "posedge", "clk", ")", "begin",
                      "if", "(", "rst", ")", "begin"):
            t.expect(token)
        resets: dict[str, int] = {}
        while not t.accept("end"):
            name = t.next()
            t.expect("<=")
            value = self._expression()
            t.expect(";")
            if not isinstance(value, Const):
                raise VerilogParseError("reset values must be constants")
            resets[name] = value.value
        for token in ("else", "begin"):
            t.expect(token)
        while not t.accept("end"):
            name = t.next()
            t.expect("<=")
            expr = self._expression()
            t.expect(";")
            self.reg_updates[name] = (resets.get(name, 0), expr)
        t.expect("end")  # closes the always block

    def _instance(self) -> None:
        t = self.tokens
        module_name = t.next()
        instance_name = t.next()
        t.expect("(")
        connections: dict[str, str] = {}
        while not t.accept(")"):
            t.expect(".")
            port = t.next()
            t.expect("(")
            signal = t.next()
            t.expect(")")
            t.accept(",")
            connections[port] = signal
        t.expect(";")
        self.instances.append((instance_name, module_name, connections))

    # -- expressions -------------------------------------------------------

    def _expression(self) -> Expr:
        return self._ternary()

    def _ternary(self) -> Expr:
        condition = self._binary(0)
        if not self.tokens.accept("?"):
            return condition
        if condition.width != 1:
            condition = Slice(condition, 0, 0)
        if_true = self._ternary()
        self.tokens.expect(":")
        if_false = self._ternary()
        return Mux(condition, if_true, if_false)

    def _binary(self, level: int) -> Expr:
        if level >= len(_PRECEDENCE):
            return self._unary()
        ops = _PRECEDENCE[level]
        left = self._binary(level + 1)
        while self.tokens.peek() in ops:
            symbol = self.tokens.next()
            right = self._binary(level + 1)
            left = BinOp(ops[symbol], left, right)
        return left

    def _unary(self) -> Expr:
        t = self.tokens
        token = t.peek()
        if token == "~":
            t.next()
            return UnaryOp("not", self._unary())
        if token == "-":
            t.next()
            return UnaryOp("neg", self._unary())
        if token in ("&", "|", "^"):
            t.next()
            op = {"&": "rand", "|": "ror", "^": "rxor"}[token]
            return UnaryOp(op, self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        t = self.tokens
        token = t.next()
        if token == "(":
            expr = self._expression()
            t.expect(")")
            return self._maybe_select(expr)
        if token == "{":
            parts = [self._expression()]
            while t.accept(","):
                parts.append(self._expression())
            t.expect("}")
            return self._maybe_select(Cat(parts))
        if "'" in token:
            return _parse_literal(token)
        if token.isdigit():
            value = int(token)
            return Const(value, max(1, value.bit_length()))
        if token not in self.widths:
            raise VerilogParseError(f"undeclared identifier {token!r}")
        expr: Expr = Ref(Signal(token, self.widths[token]))
        return self._maybe_select(expr)

    def _maybe_select(self, expr: Expr) -> Expr:
        t = self.tokens
        while t.peek() == "[":
            t.next()
            hi = int(t.next())
            if t.accept(":"):
                lo = int(t.next())
            else:
                lo = hi
            t.expect("]")
            expr = Slice(expr, hi, lo)
        return expr

    # -- module assembly ----------------------------------------------------

    def _build(self, name: str, port_order: list[str]) -> Module:
        module = Module(name)
        signal_of: dict[str, Signal] = {}
        for port in port_order:
            if port in ("clk", "rst"):
                continue
            kind = self.kinds.get(port)
            if kind == "input":
                signal_of[port] = module.add_input(port, self.widths[port])
            elif kind == "output":
                signal_of[port] = module.add_output(port, self.widths[port])
            else:
                raise VerilogParseError(f"port {port!r} lacks a direction")
        for sig_name, kind in self.kinds.items():
            if sig_name in signal_of:
                continue
            if kind == "reg" and sig_name in self.reg_updates:
                continue  # created via add_register below
            if kind in ("wire", "reg"):
                signal_of[sig_name] = module.add_wire(
                    sig_name, self.widths[sig_name]
                )

        registers: dict[str, object] = {}
        for reg_name, (reset, _expr) in self.reg_updates.items():
            register = module.add_register(
                reg_name, self.widths[reg_name], reset_value=reset
            )
            registers[reg_name] = register
            signal_of[reg_name] = register.signal

        def rebind(expr: Expr) -> Expr:
            if isinstance(expr, Ref):
                if expr.signal.name not in signal_of:
                    raise VerilogParseError(
                        f"undeclared signal {expr.signal.name!r}"
                    )
                return Ref(signal_of[expr.signal.name])
            if isinstance(expr, UnaryOp):
                return UnaryOp(expr.op, rebind(expr.operand))
            if isinstance(expr, BinOp):
                return BinOp(expr.op, rebind(expr.a), rebind(expr.b))
            if isinstance(expr, Mux):
                return Mux(rebind(expr.sel), rebind(expr.if_true),
                           rebind(expr.if_false))
            if isinstance(expr, Cat):
                return Cat([rebind(p) for p in expr.parts])
            if isinstance(expr, Slice):
                return Slice(rebind(expr.value), expr.hi, expr.lo)
            return expr

        for target, expr in self.assigns:
            sized = _contextualize(rebind(expr), signal_of[target].width)
            module.assign(signal_of[target], sized)
        for reg_name, (_reset, expr) in self.reg_updates.items():
            width = registers[reg_name].signal.width
            registers[reg_name].next = _contextualize(rebind(expr), width)
        for inst_name, module_name, connections in self.instances:
            if module_name not in self.known:
                raise VerilogParseError(
                    f"instance of unknown module {module_name!r}"
                )
            conns = {
                port: signal_of[sig]
                for port, sig in connections.items()
                if port not in ("clk", "rst")
            }
            module.add_instance(inst_name, self.known[module_name], conns)
        module.validate()
        return module


#: Operators whose operands take the assignment context's width in
#: Verilog ("context-determined" expressions, IEEE 1364 table 5-22).
_CONTEXT_OPS = frozenset({"add", "sub", "and", "or", "xor"})


def _zext(expr: Expr, width: int) -> Expr:
    if expr.width >= width:
        return expr
    return Cat([Const(0, width - expr.width), expr])


def _contextualize(expr: Expr, width: int) -> Expr:
    """Apply Verilog context sizing: widen through context-determined
    operators so carries are kept, then truncate to the target width."""
    expr = _grow(expr, width)
    if expr.width > width:
        expr = Slice(expr, width - 1, 0)
    return _zext(expr, width) if expr.width < width else expr


def _grow(expr: Expr, width: int) -> Expr:
    if isinstance(expr, BinOp) and expr.op in _CONTEXT_OPS:
        return BinOp(
            expr.op,
            _zext(_grow(expr.a, width), width),
            _zext(_grow(expr.b, width), width),
        )
    if isinstance(expr, BinOp) and expr.op in ("shl", "shr"):
        return BinOp(expr.op, _zext(_grow(expr.a, width), width), expr.b)
    if isinstance(expr, UnaryOp) and expr.op in ("not", "neg"):
        return UnaryOp(expr.op, _zext(_grow(expr.operand, width), width))
    if isinstance(expr, Mux):
        return Mux(
            expr.sel,
            _zext(_grow(expr.if_true, width), width),
            _zext(_grow(expr.if_false, width), width),
        )
    return expr


def parse_verilog(
    text: str, known: dict[str, Module] | None = None
) -> Module:
    """Parse Verilog text; the last module becomes the top.

    Earlier modules in the file may be instantiated by later ones
    (dependency order, which is how :func:`to_verilog` emits hierarchies).
    ``known`` pre-populates the instantiable-module table — interactive
    edit sessions pass their current design's modules so a re-authored
    module can instantiate siblings without re-declaring them in ``text``.
    The mapping is not mutated.
    """
    tokens = _Tokens(text)
    known = dict(known) if known else {}
    last: Module | None = None
    while tokens.peek() is not None:
        module = _ModuleParser(tokens, known).parse()
        known[module.name] = module
        last = module
    if last is None:
        raise VerilogParseError("no module found")
    return last
