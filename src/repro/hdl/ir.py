"""Word-level RTL intermediate representation.

The IR models synchronous digital hardware at the register-transfer level:

* :class:`Signal` — a named bundle of wires with a fixed bit width.
* :class:`Expr` subclasses — a pure combinational expression tree over
  signals (:class:`Const`, :class:`Ref`, :class:`UnaryOp`, :class:`BinOp`,
  :class:`Mux`, :class:`Cat`, :class:`Slice`).
* :class:`Register` — a D flip-flop bank with a synchronous next-value
  expression and a reset value.  The IR assumes a single implicit clock
  domain, which matches the educational scope of the toolkit.
* :class:`Module` — a design unit with ports, internal wires, combinational
  assignments, registers and submodule instances.

Width semantics (all values are unsigned, arithmetic is modular):

========================  =======================================
Expression                Result width
========================  =======================================
``add``, ``sub``          ``max(w_a, w_b)`` (carry/borrow dropped)
``mul``                   ``w_a + w_b``
``and``, ``or``, ``xor``  ``max(w_a, w_b)`` (zero-extended)
``shl``, ``shr``          ``w_a`` (shifted-out bits dropped)
comparisons               ``1``
``not``, ``neg``          ``w`` (operand width)
reductions                ``1``
``Mux``                   ``max(w_then, w_else)``
``Cat``                   sum of part widths (first part is MSB)
``Slice(v, hi, lo)``      ``hi - lo + 1``
========================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field


class HdlError(Exception):
    """Raised for malformed IR: bad widths, multiple drivers, loops."""


#: Binary operators with word-level semantics.
BINARY_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "and",
        "or",
        "xor",
        "shl",
        "shr",
        "eq",
        "ne",
        "lt",
        "le",
        "gt",
        "ge",
    }
)

#: Unary operators. ``not`` is bitwise complement, ``neg`` two's complement,
#: ``rand``/``ror``/``rxor`` are single-bit reductions.
UNARY_OPS = frozenset({"not", "neg", "rand", "ror", "rxor"})

_COMPARISONS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})
_REDUCTIONS = frozenset({"rand", "ror", "rxor"})


class Signal:
    """A named group of wires with a fixed width.

    Signals compare and hash by identity: two signals with the same name are
    still distinct nets.  Names must be unique within one :class:`Module`,
    which :meth:`Module.validate` enforces.
    """

    __slots__ = ("name", "width")

    def __init__(self, name: str, width: int):
        if width < 1:
            raise HdlError(f"signal {name!r}: width must be >= 1, got {width}")
        if not name or not name.replace("_", "a").replace(".", "a").isalnum():
            raise HdlError(f"invalid signal name {name!r}")
        self.name = name
        self.width = width

    @property
    def mask(self) -> int:
        """Bit mask covering the signal's full width."""
        return (1 << self.width) - 1

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, {self.width})"


class Expr:
    """Base class for combinational expressions."""

    __slots__ = ()

    @property
    def width(self) -> int:
        raise NotImplementedError

    def signals(self) -> set[Signal]:
        """All signals referenced anywhere in this expression tree."""
        found: set[Signal] = set()
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Ref):
                found.add(node.signal)
            stack.extend(node.children())
        return found

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions, used by generic tree walkers."""
        return ()


class Const(Expr):
    """A literal value, masked to its width."""

    __slots__ = ("value", "_width")

    def __init__(self, value: int, width: int):
        if width < 1:
            raise HdlError(f"const width must be >= 1, got {width}")
        if value < 0:
            value &= (1 << width) - 1
        if value >= (1 << width):
            raise HdlError(f"constant {value} does not fit in {width} bits")
        self.value = value
        self._width = width

    @property
    def width(self) -> int:
        return self._width

    def __repr__(self) -> str:
        return f"Const({self.value}, {self._width})"


class Ref(Expr):
    """A reference to a :class:`Signal`."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal):
        self.signal = signal

    @property
    def width(self) -> int:
        return self.signal.width

    def __repr__(self) -> str:
        return f"Ref({self.signal.name})"


class UnaryOp(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        if op not in UNARY_OPS:
            raise HdlError(f"unknown unary op {op!r}")
        self.op = op
        self.operand = operand

    @property
    def width(self) -> int:
        if self.op in _REDUCTIONS:
            return 1
        return self.operand.width

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"UnaryOp({self.op!r}, {self.operand!r})"


class BinOp(Expr):
    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: Expr, b: Expr):
        if op not in BINARY_OPS:
            raise HdlError(f"unknown binary op {op!r}")
        self.op = op
        self.a = a
        self.b = b

    @property
    def width(self) -> int:
        if self.op in _COMPARISONS:
            return 1
        if self.op == "mul":
            return self.a.width + self.b.width
        if self.op in ("shl", "shr"):
            return self.a.width
        return max(self.a.width, self.b.width)

    def children(self) -> tuple[Expr, ...]:
        return (self.a, self.b)

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.a!r}, {self.b!r})"


class Mux(Expr):
    """Two-way selector: ``sel ? if_true : if_false``."""

    __slots__ = ("sel", "if_true", "if_false")

    def __init__(self, sel: Expr, if_true: Expr, if_false: Expr):
        if sel.width != 1:
            raise HdlError(f"mux select must be 1 bit wide, got {sel.width}")
        self.sel = sel
        self.if_true = if_true
        self.if_false = if_false

    @property
    def width(self) -> int:
        return max(self.if_true.width, self.if_false.width)

    def children(self) -> tuple[Expr, ...]:
        return (self.sel, self.if_true, self.if_false)

    def __repr__(self) -> str:
        return f"Mux({self.sel!r}, {self.if_true!r}, {self.if_false!r})"


class Cat(Expr):
    """Concatenation; the first part supplies the most-significant bits."""

    __slots__ = ("parts",)

    def __init__(self, parts: list[Expr] | tuple[Expr, ...]):
        if not parts:
            raise HdlError("cat of zero parts")
        self.parts = tuple(parts)

    @property
    def width(self) -> int:
        return sum(p.width for p in self.parts)

    def children(self) -> tuple[Expr, ...]:
        return self.parts

    def __repr__(self) -> str:
        return f"Cat({list(self.parts)!r})"


class Slice(Expr):
    """Bit-slice ``value[hi:lo]`` (both bounds inclusive, lo is bit 0 side)."""

    __slots__ = ("value", "hi", "lo")

    def __init__(self, value: Expr, hi: int, lo: int):
        if not 0 <= lo <= hi < value.width:
            raise HdlError(
                f"slice [{hi}:{lo}] out of range for width {value.width}"
            )
        self.value = value
        self.hi = hi
        self.lo = lo

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    def children(self) -> tuple[Expr, ...]:
        return (self.value,)

    def __repr__(self) -> str:
        return f"Slice({self.value!r}, {self.hi}, {self.lo})"


@dataclass
class Register:
    """A synchronous register bank.

    ``signal`` holds the current (Q) value and may be read combinationally;
    ``next`` is sampled at every rising clock edge; ``reset_value`` is loaded
    by a synchronous reset handled at the simulator / netlist level.
    """

    signal: Signal
    next: Expr
    reset_value: int = 0

    def __post_init__(self) -> None:
        if self.next.width > self.signal.width:
            raise HdlError(
                f"register {self.signal.name!r}: next-value width "
                f"{self.next.width} exceeds register width {self.signal.width}"
            )
        if not 0 <= self.reset_value < (1 << self.signal.width):
            raise HdlError(
                f"register {self.signal.name!r}: reset value "
                f"{self.reset_value} does not fit in {self.signal.width} bits"
            )


@dataclass
class Instance:
    """A submodule instantiation.

    ``connections`` maps the *child's* port names to signals of the parent
    module.  Every child port must be connected and widths must match.
    """

    name: str
    module: "Module"
    connections: dict[str, Signal]


class Module:
    """A hardware design unit.

    Driver rules checked by :meth:`validate`:

    * each output and internal wire has exactly one driver — a combinational
      assignment, a register, or an instance output connection;
    * inputs are never driven;
    * combinational assignments form no cycle.
    """

    def __init__(self, name: str):
        self.name = name
        self.inputs: list[Signal] = []
        self.outputs: list[Signal] = []
        self.wires: list[Signal] = []
        self.assigns: dict[Signal, Expr] = {}
        self.registers: list[Register] = []
        self.instances: list[Instance] = []

    # -- construction -----------------------------------------------------

    def add_input(self, name: str, width: int) -> Signal:
        sig = Signal(name, width)
        self.inputs.append(sig)
        return sig

    def add_output(self, name: str, width: int) -> Signal:
        sig = Signal(name, width)
        self.outputs.append(sig)
        return sig

    def add_wire(self, name: str, width: int) -> Signal:
        sig = Signal(name, width)
        self.wires.append(sig)
        return sig

    def assign(self, target: Signal, expr: Expr) -> None:
        """Drive ``target`` combinationally from ``expr``.

        A narrower expression is implicitly zero-extended; a wider one is an
        error (no silent truncation).
        """
        if target in self.assigns:
            raise HdlError(f"signal {target.name!r} already assigned")
        if expr.width > target.width:
            raise HdlError(
                f"assign to {target.name!r}: expression width {expr.width} "
                f"exceeds target width {target.width}"
            )
        self.assigns[target] = expr

    def add_register(
        self, name: str, width: int, next: Expr | None = None, reset_value: int = 0
    ) -> Register:
        sig = Signal(name, width)
        self.wires.append(sig)
        reg = Register(sig, next if next is not None else Ref(sig), reset_value)
        self.registers.append(reg)
        return reg

    def add_instance(
        self, name: str, module: "Module", connections: dict[str, Signal]
    ) -> Instance:
        inst = Instance(name, module, dict(connections))
        self.instances.append(inst)
        return inst

    # -- introspection ----------------------------------------------------

    @property
    def signals(self) -> list[Signal]:
        """All signals of the module in declaration order."""
        return [*self.inputs, *self.outputs, *self.wires]

    def signal_by_name(self, name: str) -> Signal:
        for sig in self.signals:
            if sig.name == name:
                return sig
        raise KeyError(f"no signal named {name!r} in module {self.name!r}")

    def port_by_name(self, name: str) -> Signal:
        for sig in [*self.inputs, *self.outputs]:
            if sig.name == name:
                return sig
        raise KeyError(f"no port named {name!r} in module {self.name!r}")

    def drivers(self) -> dict[Signal, object]:
        """Map every driven signal to its driver object.

        The driver is the :class:`Expr` for assignments, the
        :class:`Register` for registers, or the :class:`Instance` for
        instance output connections.  Raises on double drivers.
        """
        driven: dict[Signal, object] = {}

        def claim(sig: Signal, driver: object) -> None:
            if sig in driven:
                raise HdlError(f"signal {sig.name!r} has multiple drivers")
            driven[sig] = driver

        for sig, expr in self.assigns.items():
            claim(sig, expr)
        for reg in self.registers:
            claim(reg.signal, reg)
        for inst in self.instances:
            child_outputs = {p.name for p in inst.module.outputs}
            for port_name, parent_sig in inst.connections.items():
                # Unknown port names are reported by validate(), not here.
                if port_name in child_outputs:
                    claim(parent_sig, inst)
        return driven

    def validate(self) -> None:
        """Check structural well-formedness; raises :class:`HdlError`."""
        names: set[str] = set()
        for sig in self.signals:
            if sig.name in names:
                raise HdlError(
                    f"module {self.name!r}: duplicate signal name {sig.name!r}"
                )
            names.add(sig.name)

        known = set(self.signals)
        driven = self.drivers()

        for sig in self.inputs:
            if sig in driven:
                raise HdlError(f"input {sig.name!r} must not be driven")
        for sig in [*self.outputs, *self.wires]:
            if sig not in driven:
                raise HdlError(f"signal {sig.name!r} has no driver")

        for target, expr in self.assigns.items():
            for ref in expr.signals():
                if ref not in known:
                    raise HdlError(
                        f"assign to {target.name!r} references foreign "
                        f"signal {ref.name!r}"
                    )
        for reg in self.registers:
            for ref in reg.next.signals():
                if ref not in known:
                    raise HdlError(
                        f"register {reg.signal.name!r} references foreign "
                        f"signal {ref.name!r}"
                    )

        for inst in self.instances:
            child_ports = {p.name for p in [*inst.module.inputs, *inst.module.outputs]}
            for port_name, parent_sig in inst.connections.items():
                if port_name not in child_ports:
                    raise HdlError(
                        f"instance {inst.name!r}: module {inst.module.name!r} "
                        f"has no port {port_name!r}"
                    )
                if parent_sig not in known:
                    raise HdlError(
                        f"instance {inst.name!r}: connection to foreign "
                        f"signal {parent_sig.name!r}"
                    )
                port = inst.module.port_by_name(port_name)
                if port.width != parent_sig.width:
                    raise HdlError(
                        f"instance {inst.name!r} port {port_name!r}: width "
                        f"{port.width} != {parent_sig.width}"
                    )
            missing = child_ports - set(inst.connections)
            if missing:
                raise HdlError(
                    f"instance {inst.name!r}: unconnected ports {sorted(missing)}"
                )

        self.comb_order()  # raises on combinational loops

    def comb_order(self) -> list[Signal]:
        """Topological order of combinationally assigned signals.

        Register outputs, inputs and instance outputs are treated as sources.
        Raises :class:`HdlError` if the assignments form a cycle.
        """
        order: list[Signal] = []
        state: dict[Signal, int] = {}  # 0 visiting, 1 done

        def visit(sig: Signal) -> None:
            if sig not in self.assigns:
                return
            mark = state.get(sig)
            if mark == 1:
                return
            if mark == 0:
                raise HdlError(
                    f"combinational loop through signal {sig.name!r}"
                )
            state[sig] = 0
            for dep in self.assigns[sig].signals():
                visit(dep)
            state[sig] = 1
            order.append(sig)

        for sig in self.assigns:
            visit(sig)
        return order

    def stats(self) -> dict[str, int]:
        """Size statistics used by productivity analytics."""

        def expr_nodes(expr: Expr) -> int:
            return 1 + sum(expr_nodes(c) for c in expr.children())

        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "wires": len(self.wires),
            "assigns": len(self.assigns),
            "registers": len(self.registers),
            "register_bits": sum(r.signal.width for r in self.registers),
            "instances": len(self.instances),
            "expr_nodes": sum(expr_nodes(e) for e in self.assigns.values())
            + sum(expr_nodes(r.next) for r in self.registers),
        }

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, in={len(self.inputs)}, "
            f"out={len(self.outputs)}, regs={len(self.registers)}, "
            f"insts={len(self.instances)})"
        )


def eval_expr(expr: Expr, values: dict[Signal, int]) -> int:
    """Evaluate ``expr`` with signal ``values`` under unsigned semantics.

    This is the single definition of IR semantics; the simulator, the
    synthesis equivalence checks and the property tests all use it.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Ref):
        return values[expr.signal] & expr.signal.mask
    if isinstance(expr, UnaryOp):
        val = eval_expr(expr.operand, values)
        w = expr.operand.width
        mask = (1 << w) - 1
        if expr.op == "not":
            return (~val) & mask
        if expr.op == "neg":
            return (-val) & mask
        if expr.op == "rand":
            return 1 if val == mask else 0
        if expr.op == "ror":
            return 1 if val != 0 else 0
        if expr.op == "rxor":
            return bin(val).count("1") & 1
        raise HdlError(f"unhandled unary op {expr.op!r}")
    if isinstance(expr, BinOp):
        a = eval_expr(expr.a, values)
        b = eval_expr(expr.b, values)
        mask = (1 << expr.width) - 1
        op = expr.op
        if op == "add":
            return (a + b) & mask
        if op == "sub":
            return (a - b) & mask
        if op == "mul":
            return (a * b) & mask
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return (a << b) & mask if b < expr.a.width else 0
        if op == "shr":
            return a >> b if b < expr.a.width else 0
        if op == "eq":
            return 1 if a == b else 0
        if op == "ne":
            return 1 if a != b else 0
        if op == "lt":
            return 1 if a < b else 0
        if op == "le":
            return 1 if a <= b else 0
        if op == "gt":
            return 1 if a > b else 0
        if op == "ge":
            return 1 if a >= b else 0
        raise HdlError(f"unhandled binary op {op!r}")
    if isinstance(expr, Mux):
        sel = eval_expr(expr.sel, values)
        return eval_expr(expr.if_true if sel else expr.if_false, values)
    if isinstance(expr, Cat):
        result = 0
        for part in expr.parts:
            result = (result << part.width) | eval_expr(part, values)
        return result
    if isinstance(expr, Slice):
        val = eval_expr(expr.value, values)
        return (val >> expr.lo) & ((1 << expr.width) - 1)
    raise HdlError(f"cannot evaluate expression {expr!r}")
