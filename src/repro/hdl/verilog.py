"""Verilog-2001 emission for RTL modules.

Generated Verilog serves as IP collateral (Recommendation 5 of the paper
stresses that open-source IP must ship with usable collaterals) and gives a
line-count basis for the productivity experiments (E2, E10): the emitted
text is the "RTL code" whose lines are compared against mapped gate counts.
"""

from __future__ import annotations

from .ir import (
    BinOp,
    Cat,
    Const,
    Expr,
    Module,
    Mux,
    Ref,
    Signal,
    Slice,
    UnaryOp,
)

_BIN_SYMBOL = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "and": "&",
    "or": "|",
    "xor": "^",
    "shl": "<<",
    "shr": ">>",
    "eq": "==",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
}

_UNARY_SYMBOL = {"not": "~", "neg": "-", "rand": "&", "ror": "|", "rxor": "^"}


def _vname(name: str) -> str:
    """Verilog-legal identifier (hierarchy dots become underscores)."""
    return name.replace(".", "_")


def _emit_expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        return f"{expr.width}'d{expr.value}"
    if isinstance(expr, Ref):
        return _vname(expr.signal.name)
    if isinstance(expr, UnaryOp):
        return f"({_UNARY_SYMBOL[expr.op]}{_emit_expr(expr.operand)})"
    if isinstance(expr, BinOp):
        return (
            f"({_emit_expr(expr.a)} {_BIN_SYMBOL[expr.op]} {_emit_expr(expr.b)})"
        )
    if isinstance(expr, Mux):
        return (
            f"({_emit_expr(expr.sel)} ? {_emit_expr(expr.if_true)} "
            f": {_emit_expr(expr.if_false)})"
        )
    if isinstance(expr, Cat):
        return "{" + ", ".join(_emit_expr(p) for p in expr.parts) + "}"
    if isinstance(expr, Slice):
        base = _emit_expr(expr.value)
        if expr.hi == expr.lo:
            return f"{base}[{expr.lo}]"
        return f"{base}[{expr.hi}:{expr.lo}]"
    raise TypeError(f"cannot emit expression {expr!r}")


def _range(sig: Signal) -> str:
    return f"[{sig.width - 1}:0] " if sig.width > 1 else ""


def to_verilog(module: Module) -> str:
    """Render ``module`` as synthesizable Verilog-2001 text.

    Hierarchical designs are emitted with one ``module`` block per unique
    submodule, dependencies first.
    """
    blocks: list[str] = []
    emitted: set[str] = set()

    def emit_module(mod: Module) -> None:
        for inst in mod.instances:
            if inst.module.name not in emitted:
                emit_module(inst.module)
        if mod.name in emitted:
            return
        emitted.add(mod.name)
        blocks.append(_emit_single(mod))

    emit_module(module)
    return "\n\n".join(blocks) + "\n"


def _emit_single(mod: Module) -> str:
    lines: list[str] = []
    ports = ["clk", "rst"] if mod.registers else []
    ports += [_vname(s.name) for s in mod.inputs]
    ports += [_vname(s.name) for s in mod.outputs]
    lines.append(f"module {_vname(mod.name)} ({', '.join(ports)});")
    if mod.registers:
        lines.append("  input clk;")
        lines.append("  input rst;")
    for sig in mod.inputs:
        lines.append(f"  input {_range(sig)}{_vname(sig.name)};")
    for sig in mod.outputs:
        lines.append(f"  output {_range(sig)}{_vname(sig.name)};")

    reg_signals = {reg.signal for reg in mod.registers}
    for sig in mod.wires:
        kind = "reg" if sig in reg_signals else "wire"
        lines.append(f"  {kind} {_range(sig)}{_vname(sig.name)};")

    for inst in mod.instances:
        conns = [
            f".{_vname(port)}({_vname(sig.name)})"
            for port, sig in sorted(inst.connections.items())
        ]
        if inst.module.registers:
            conns = [".clk(clk)", ".rst(rst)"] + conns
        lines.append(
            f"  {_vname(inst.module.name)} {_vname(inst.name)} "
            f"({', '.join(conns)});"
        )

    for target in sorted(mod.assigns, key=lambda s: s.name):
        expr = mod.assigns[target]
        text = _emit_expr(expr)
        if expr.width < target.width:
            # Braces force a self-determined context so the expression
            # computes at its own width (IR semantics) before the implicit
            # zero-extension to the wider target.
            text = "{" + text + "}"
        lines.append(f"  assign {_vname(target.name)} = {text};")

    if mod.registers:
        lines.append("  always @(posedge clk) begin")
        lines.append("    if (rst) begin")
        for reg in mod.registers:
            lines.append(
                f"      {_vname(reg.signal.name)} <= "
                f"{reg.signal.width}'d{reg.reset_value};"
            )
        lines.append("    end else begin")
        for reg in mod.registers:
            text = _emit_expr(reg.next)
            if reg.next.width < reg.signal.width:
                text = "{" + text + "}"  # self-determined, see assigns
            lines.append(
                f"      {_vname(reg.signal.name)} <= {text};"
            )
        lines.append("    end")
        lines.append("  end")

    lines.append("endmodule")
    return "\n".join(lines)


def count_rtl_lines(module: Module) -> int:
    """Number of non-blank RTL source lines for productivity metrics."""
    return sum(1 for line in to_verilog(module).splitlines() if line.strip())
