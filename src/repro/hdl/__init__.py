"""RTL hardware description infrastructure.

Public surface:

* :mod:`repro.hdl.ir` — the word-level IR (signals, expressions, modules).
* :mod:`repro.hdl.hcl` — the hardware-construction-language builder API.
* :func:`repro.hdl.elaborate` — hierarchy flattening.
* :func:`repro.hdl.to_verilog` — Verilog-2001 collateral emission.
"""

from .elaborate import elaborate
from .hcl import ModuleBuilder, RegisterValue, Value, cat, mux
from .ir import (
    BINARY_OPS,
    UNARY_OPS,
    BinOp,
    Cat,
    Const,
    Expr,
    HdlError,
    Instance,
    Module,
    Mux,
    Ref,
    Register,
    Signal,
    Slice,
    UnaryOp,
    eval_expr,
)
from .verilog import count_rtl_lines, to_verilog
from .verilog_parser import VerilogParseError, parse_verilog

__all__ = [
    "BINARY_OPS",
    "UNARY_OPS",
    "BinOp",
    "Cat",
    "Const",
    "Expr",
    "HdlError",
    "Instance",
    "Module",
    "ModuleBuilder",
    "Mux",
    "Ref",
    "Register",
    "RegisterValue",
    "Signal",
    "Slice",
    "UnaryOp",
    "Value",
    "VerilogParseError",
    "cat",
    "count_rtl_lines",
    "elaborate",
    "eval_expr",
    "mux",
    "parse_verilog",
    "to_verilog",
]
