"""Productivity metrics: the paper's abstraction-gap numbers (E2, E10).

Three measurable quantities from the paper's Introduction and III-B:

* gates per RTL line (paper: 5–20) — measured by running real synthesis
  on real designs and dividing mapped gate count by emitted RTL lines;
* assembly instructions per Python line (paper: "thousands") — measured
  by compiling programs on the :mod:`repro.swstack` VM;
* the HLS abstraction ratio (Recommendation 4) — RTL lines generated per
  line of HLS source.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl.ir import Module
from ..hdl.verilog import count_rtl_lines
from ..pdk.cells import Library
from ..swstack.vm import compile_source
from ..synth.synthesize import synthesize


@dataclass(frozen=True)
class ProductivityRecord:
    """Gates-per-line measurement for one design."""

    design: str
    rtl_lines: int
    gate_count: int

    @property
    def gates_per_line(self) -> float:
        return self.gate_count / max(1, self.rtl_lines)


def measure_gates_per_line(
    modules: list[Module], library: Library
) -> list[ProductivityRecord]:
    """Synthesize each module and record the E2 frontend metric."""
    records = []
    for module in modules:
        result = synthesize(module, library)
        records.append(
            ProductivityRecord(
                design=module.name,
                rtl_lines=result.rtl_lines,
                gate_count=result.gate_count,
            )
        )
    return records


def mean_gates_per_line(records: list[ProductivityRecord]) -> float:
    if not records:
        return 0.0
    return sum(r.gates_per_line for r in records) / len(records)


def instructions_per_python_line(source: str) -> float:
    """E2 software-side metric via the stack-VM compiler."""
    return compile_source(source).instructions_per_line()


def max_line_expansion(source: str) -> int:
    """Largest single-line instruction expansion (the 'thousands' claim)."""
    return compile_source(source).max_expansion()


@dataclass(frozen=True)
class AbstractionGap:
    """The complete E2 comparison row."""

    gates_per_rtl_line: float
    instructions_per_python_line: float

    @property
    def ratio(self) -> float:
        """How many times more output a software line produces."""
        return self.instructions_per_python_line / max(
            1e-9, self.gates_per_rtl_line
        )


def abstraction_gap(
    modules: list[Module], library: Library, python_source: str
) -> AbstractionGap:
    records = measure_gates_per_line(modules, library)
    return AbstractionGap(
        gates_per_rtl_line=round(mean_gates_per_line(records), 2),
        instructions_per_python_line=round(
            instructions_per_python_line(python_source), 2
        ),
    )


@dataclass(frozen=True)
class HlsProductivity:
    """E10 row: HLS source vs generated RTL vs gates."""

    function: str
    hls_lines: int
    rtl_lines: int
    gate_count: int
    latency_cycles: int

    @property
    def rtl_lines_per_hls_line(self) -> float:
        return self.rtl_lines / max(1, self.hls_lines)

    @property
    def gates_per_hls_line(self) -> float:
        return self.gate_count / max(1, self.hls_lines)


def measure_hls_productivity(function, library: Library,
                             **hls_kwargs) -> HlsProductivity:
    """Compile a function through HLS, then synthesize the result."""
    from ..hls.codegen import compile_function

    hls = compile_function(function, **hls_kwargs)
    synth = synthesize(hls.module, library)
    return HlsProductivity(
        function=hls.dfg.name,
        hls_lines=hls.source_lines,
        rtl_lines=count_rtl_lines(hls.module),
        gate_count=synth.gate_count,
        latency_cycles=hls.latency,
    )
