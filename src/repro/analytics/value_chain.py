"""Semiconductor value-chain model (experiment E1).

Encodes the market-structure numbers the paper's introduction cites:
chip design and fabrication are the two largest value-chain segments
(30% and 34% of added value); Europe contributes only 10% and 8% to them
while holding 40% of equipment and 20% of materials; and within its focus
application areas (industrial, automotive, …) Europe covers 55% of the
global market.  The model computes the gap metrics the paper's argument
rests on and projects the effect of closing them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Segment:
    """One value-chain segment."""

    name: str
    #: Share of total semiconductor added value (fractions sum to ~1).
    value_share: float
    #: Europe's share of this segment's global activity.
    europe_share: float


#: Value-chain decomposition per the paper's citations [3], [4].
SEGMENTS: tuple[Segment, ...] = (
    Segment("chip_design", 0.30, 0.10),
    Segment("fabrication", 0.34, 0.08),
    Segment("equipment", 0.11, 0.40),
    Segment("materials", 0.05, 0.20),
    Segment("eda_ip", 0.03, 0.12),
    Segment("assembly_test", 0.06, 0.05),
    Segment("other", 0.11, 0.10),
)

#: Europe's coverage of its focus application segments (paper: 55%).
EUROPE_FOCUS_COVERAGE = 0.55


def segment(name: str) -> Segment:
    for entry in SEGMENTS:
        if entry.name == name:
            return entry
    raise KeyError(f"unknown segment {name!r}")


def europe_value_capture() -> float:
    """Europe's overall share of semiconductor added value."""
    return sum(s.value_share * s.europe_share for s in SEGMENTS)


def design_gap_table() -> list[dict[str, float]]:
    """The E1 table: per segment, value share, Europe share, and the gap
    to a proportional (say 20%) European position."""
    target = 0.20
    rows = []
    for entry in SEGMENTS:
        rows.append(
            {
                "segment": entry.name,
                "value_share": entry.value_share,
                "europe_share": entry.europe_share,
                "gap_to_target": round(max(0.0, target - entry.europe_share), 3),
                "weighted_gap": round(
                    max(0.0, target - entry.europe_share) * entry.value_share, 4
                ),
            }
        )
    return rows


def largest_segments(count: int = 2) -> list[str]:
    """The biggest segments by value share — the paper names design and
    fabrication as the top two."""
    ordered = sorted(SEGMENTS, key=lambda s: s.value_share, reverse=True)
    return [s.name for s in ordered[:count]]


def capture_if_design_share(new_design_share: float) -> float:
    """Europe's overall capture if the design share were lifted.

    Quantifies the paper's core claim: because design is ~30% of value,
    improving the design position moves the European total more than
    improving any other single segment except fabrication.
    """
    total = 0.0
    for entry in SEGMENTS:
        share = new_design_share if entry.name == "chip_design" else entry.europe_share
        total += entry.value_share * share
    return total


def uplift_per_segment(delta: float = 0.05) -> dict[str, float]:
    """Overall-capture uplift from a +delta share in each single segment."""
    return {
        entry.name: round(entry.value_share * delta, 5) for entry in SEGMENTS
    }
