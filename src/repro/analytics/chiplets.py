"""Chiplet vs monolithic integration economics.

Section III-D: "the advent of 3D communication substrates compatible
with chiplets.  The chiplet-based mix-and-match approach to system design
requires interoperability and reusability, further increasing the overall
design flow complexity."  This module quantifies *why* the industry puts
up with that complexity: known-good-die yield economics.

Yield follows the classic negative-binomial defect model

    Y = (1 + A * D0 / alpha)^(-alpha)

so splitting a large die into small chiplets raises per-die yield
dramatically; the chiplet path pays for it with interposer area, die-to-
die (D2D) PHY overhead and assembly yield.  The crossover — below which
monolithic wins and above which chiplets win — is the number every
chiplet keynote shows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Defect density of a leading-edge node early in life, defects per cm^2.
DEFAULT_D0_PER_CM2 = 0.3
#: Negative-binomial clustering parameter.
DEFAULT_ALPHA = 3.0


def die_yield(area_mm2: float, d0_per_cm2: float = DEFAULT_D0_PER_CM2,
              alpha: float = DEFAULT_ALPHA) -> float:
    """Negative-binomial die yield for a given die area."""
    if area_mm2 <= 0:
        raise ValueError("die area must be positive")
    defects = area_mm2 / 100.0 * d0_per_cm2  # area in cm^2 times density
    return (1.0 + defects / alpha) ** (-alpha)


def dies_per_wafer(area_mm2: float, wafer_diameter_mm: float = 300.0) -> int:
    """Gross dies per wafer with the standard edge-loss correction."""
    if area_mm2 <= 0:
        raise ValueError("die area must be positive")
    radius = wafer_diameter_mm / 2.0
    wafer_area = math.pi * radius * radius
    edge = math.pi * wafer_diameter_mm / math.sqrt(2.0 * area_mm2)
    return max(1, int(wafer_area / area_mm2 - edge))


@dataclass(frozen=True)
class IntegrationCost:
    """Cost result for one integration style."""

    style: str  # "monolithic" or "chiplet"
    total_silicon_mm2: float
    good_unit_cost: float
    system_yield: float
    detail: dict


def monolithic_cost(
    logic_area_mm2: float,
    wafer_cost: float = 10_000.0,
    d0_per_cm2: float = DEFAULT_D0_PER_CM2,
) -> IntegrationCost:
    """Cost of one good monolithic die implementing the whole system."""
    gross = dies_per_wafer(logic_area_mm2)
    y = die_yield(logic_area_mm2, d0_per_cm2)
    cost = wafer_cost / (gross * y)
    return IntegrationCost(
        style="monolithic",
        total_silicon_mm2=logic_area_mm2,
        good_unit_cost=round(cost, 2),
        system_yield=round(y, 4),
        detail={"gross_dies": gross, "die_yield": round(y, 4)},
    )


def chiplet_cost(
    logic_area_mm2: float,
    n_chiplets: int,
    wafer_cost: float = 10_000.0,
    d0_per_cm2: float = DEFAULT_D0_PER_CM2,
    d2d_overhead: float = 0.10,
    interposer_cost_per_mm2: float = 0.05,
    assembly_yield_per_die: float = 0.99,
) -> IntegrationCost:
    """Cost of one good chiplet-based system.

    The logic is split evenly; each chiplet grows by ``d2d_overhead`` for
    die-to-die PHYs; chiplets are known-good-die tested (so only good
    dies are assembled), and assembly succeeds per die with
    ``assembly_yield_per_die``.
    """
    if n_chiplets < 1:
        raise ValueError("need at least one chiplet")
    chiplet_area = logic_area_mm2 / n_chiplets * (1.0 + d2d_overhead)
    gross = dies_per_wafer(chiplet_area)
    y = die_yield(chiplet_area, d0_per_cm2)
    cost_per_good_die = wafer_cost / (gross * y)
    assembly = assembly_yield_per_die**n_chiplets
    interposer_area = chiplet_area * n_chiplets * 1.15  # routing margin
    silicon_cost = n_chiplets * cost_per_good_die
    interposer = interposer_area * interposer_cost_per_mm2
    total = (silicon_cost + interposer) / assembly
    return IntegrationCost(
        style="chiplet",
        total_silicon_mm2=round(chiplet_area * n_chiplets, 3),
        good_unit_cost=round(total, 2),
        system_yield=round(assembly, 4),
        detail={
            "n_chiplets": n_chiplets,
            "chiplet_area_mm2": round(chiplet_area, 3),
            "chiplet_yield": round(y, 4),
            "interposer_cost": round(interposer, 2),
        },
    )


def crossover_area_mm2(
    n_chiplets: int = 4,
    wafer_cost: float = 10_000.0,
    d0_per_cm2: float = DEFAULT_D0_PER_CM2,
    low: float = 20.0,
    high: float = 1_500.0,
) -> float:
    """System area above which the chiplet approach becomes cheaper."""
    def chiplet_wins(area: float) -> bool:
        return (
            chiplet_cost(area, n_chiplets, wafer_cost, d0_per_cm2).good_unit_cost
            < monolithic_cost(area, wafer_cost, d0_per_cm2).good_unit_cost
        )

    if chiplet_wins(low):
        return low
    if not chiplet_wins(high):
        return high
    for _ in range(60):
        mid = (low + high) / 2.0
        if chiplet_wins(mid):
            high = mid
        else:
            low = mid
    return round(high, 1)


def comparison_table(
    areas_mm2: tuple[float, ...] = (50, 100, 200, 400, 800),
    n_chiplets: int = 4,
) -> list[dict]:
    """The X5 table: monolithic vs chiplet cost across system sizes."""
    rows = []
    for area in areas_mm2:
        mono = monolithic_cost(area)
        split = chiplet_cost(area, n_chiplets)
        rows.append(
            {
                "system_mm2": area,
                "mono_yield": mono.system_yield,
                "mono_cost": mono.good_unit_cost,
                "chiplet_cost": split.good_unit_cost,
                "winner": "chiplet"
                if split.good_unit_cost < mono.good_unit_cost
                else "monolithic",
            }
        )
    return rows
