"""MPW economics (experiments E5, E11).

Turns Section III-C's cost observations into comparable numbers: what a
dedicated mask set costs versus a shared MPW seat, how much a sponsored
program (Efabless Open MPW style, Recommendation 6) can multiply academic
output per euro, and how run turnaround interacts with teaching calendars.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pdk.pdks import Pdk, get_pdk, list_pdks


@dataclass(frozen=True)
class MpwEconomics:
    """Cost comparison row for one node."""

    pdk: str
    feature_nm: float
    mask_set_eur: float
    seat_1mm2_eur: float
    sharing_factor: float
    turnaround_days: int


def economics_for(pdk: Pdk, seat_area_mm2: float = 1.0) -> MpwEconomics:
    seat = pdk.terms.mpw_cost_per_mm2_eur * max(seat_area_mm2, 1.0)
    return MpwEconomics(
        pdk=pdk.name,
        feature_nm=pdk.node.feature_nm,
        mask_set_eur=pdk.terms.mask_set_cost_eur,
        seat_1mm2_eur=round(seat, 2),
        sharing_factor=round(pdk.terms.mask_set_cost_eur / seat, 1),
        turnaround_days=pdk.terms.total_turnaround_days,
    )


def economics_table(seat_area_mm2: float = 1.0) -> list[MpwEconomics]:
    """The E11 table across all built-in nodes."""
    return [economics_for(get_pdk(name), seat_area_mm2) for name in list_pdks()]


def chips_per_budget(
    budget_eur: float, pdk: Pdk, seat_area_mm2: float = 1.0,
    subsidy_fraction: float = 0.0,
) -> int:
    """Student tape-outs a budget affords, with optional sponsorship.

    ``subsidy_fraction`` is the share of the seat price covered by a
    corporate sponsorship program (Recommendation 6).
    """
    if not 0.0 <= subsidy_fraction <= 1.0:
        raise ValueError("subsidy fraction must be within [0, 1]")
    seat = pdk.terms.mpw_cost_per_mm2_eur * max(seat_area_mm2, 1.0)
    effective = seat * (1.0 - subsidy_fraction)
    if effective <= 0:
        return 10**9  # fully sponsored: budget is not the binding limit
    return int(budget_eur // effective)


@dataclass(frozen=True)
class CourseFit:
    """E5 row: does silicon return within an academic time box?"""

    pdk: str
    turnaround_days: int
    timebox: str
    timebox_days: int

    @property
    def fits(self) -> bool:
        return self.turnaround_days <= self.timebox_days

    @property
    def overshoot_days(self) -> int:
        return max(0, self.turnaround_days - self.timebox_days)


#: Academic time boxes the paper compares against (Section I: turnaround
#: "exceed[s] typical course lengths, thesis or research project durations").
ACADEMIC_TIMEBOXES = {
    "semester_course": 105,  # a ~15-week teaching term
    "bachelor_thesis": 120,
    "master_thesis": 180,
    "phd_project_phase": 365,
}


def course_fit_table() -> list[CourseFit]:
    """Every node x time box combination (experiment E5)."""
    rows = []
    for name in list_pdks():
        pdk = get_pdk(name)
        for timebox, days in ACADEMIC_TIMEBOXES.items():
            rows.append(
                CourseFit(
                    pdk=name,
                    turnaround_days=pdk.terms.total_turnaround_days,
                    timebox=timebox,
                    timebox_days=days,
                )
            )
    return rows
