"""Design-cost model across technology nodes (experiment E3).

Section III-C anchors the curve: "production-ready designs … can range
from $5 million for a 130 nm chip to $725 million for a 2 nm chip."  We
fit the standard power law ``cost = a * (feature/130)^(-b)`` through those
two points and decompose the total into the cost categories industry
studies (IBS-style) use.  The curve reproduces the in-between industry
folklore well (~$40 M at 28 nm, ~$250 M at 5 nm), which is what the
experiment checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: The paper's two calibration points (feature nm, cost USD).
CALIBRATION = ((130.0, 5e6), (2.0, 725e6))

#: Cost-category split of a digital design project.  The advanced-node
#: shift toward verification and software is modelled by ``drift``:
#: share(node) = base + drift * advancement, advancement in [0, 1] from
#: 130 nm down to 2 nm (log scale).
_CATEGORIES = (
    # (name, base share at 130 nm, drift toward 2 nm)
    ("architecture", 0.15, -0.05),
    ("ip_licensing", 0.10, +0.03),
    ("rtl_design", 0.25, -0.08),
    ("verification", 0.20, +0.09),
    ("physical_design", 0.15, +0.02),
    ("software", 0.10, +0.04),
    ("prototyping_masks", 0.05, -0.05),
)


def _power_law() -> tuple[float, float]:
    (f1, c1), (f2, c2) = CALIBRATION
    exponent = math.log(c2 / c1) / math.log(f2 / f1)
    scale = c1 / (f1**exponent)
    return scale, exponent


@dataclass(frozen=True)
class DesignCost:
    feature_nm: float
    total_usd: float
    breakdown_usd: dict[str, float]

    @property
    def total_musd(self) -> float:
        return self.total_usd / 1e6


def design_cost_usd(feature_nm: float) -> float:
    """Total design cost for a production-ready chip at ``feature_nm``."""
    if feature_nm <= 0:
        raise ValueError("feature size must be positive")
    scale, exponent = _power_law()
    return scale * (feature_nm**exponent)


def advancement(feature_nm: float) -> float:
    """0 at 130 nm, 1 at 2 nm, log-interpolated (clamped outside)."""
    (f1, _), (f2, _) = CALIBRATION
    t = math.log(f1 / feature_nm) / math.log(f1 / f2)
    return min(1.0, max(0.0, t))


def design_cost(feature_nm: float) -> DesignCost:
    """Total cost with the per-category breakdown."""
    total = design_cost_usd(feature_nm)
    t = advancement(feature_nm)
    shares = {name: base + drift * t for name, base, drift in _CATEGORIES}
    norm = sum(shares.values())
    breakdown = {
        name: round(total * share / norm, 2) for name, share in shares.items()
    }
    return DesignCost(feature_nm, total, breakdown)


def cost_table(nodes_nm: tuple[float, ...] = (180, 130, 90, 65, 45, 28, 16, 7, 5, 3, 2)) -> list[dict[str, float]]:
    """The E3 series: design cost per node in millions of dollars."""
    return [
        {
            "node_nm": node,
            "cost_musd": round(design_cost_usd(node) / 1e6, 1),
        }
        for node in nodes_nm
    ]


def affordable_node_nm(budget_usd: float) -> float:
    """The most advanced node a given budget can afford.

    Inverts the power law — used to show what typical academic project
    budgets (10^5–10^6 USD) buy, which is the paper's accessibility point.
    """
    if budget_usd <= 0:
        raise ValueError("budget must be positive")
    scale, exponent = _power_law()
    return (budget_usd / scale) ** (1.0 / exponent)
