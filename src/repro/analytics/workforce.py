"""Talent-pipeline simulation (experiment E7).

A stock-and-flow model of the European chip-design workforce, built
around the paper's Section III-A narrative: a long pipeline from school
awareness through university specialization to employed designers, with
leaks at every stage, stagnant graduate numbers, growing demand, and the
three recommendation levers —

* **outreach** (Recommendation 1): low-barrier school programs raise the
  awareness→STEM transition;
* **campaigns** (Recommendation 2): information campaigns raise the
  EE→chip-design specialization rate and reduce misconception attrition;
* **funding** (Recommendation 3): coordinated education funding raises
  university capacity and retention.

Absolute numbers are synthetic but calibrated to the cited reports'
orders of magnitude (METIS 2023: designers among the hardest profiles to
hire; ECSA 2024: graduates stagnating).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class PipelineParams:
    """Annual cohort sizes and transition rates."""

    school_cohort: float = 5_000_000.0  # EU-wide relevant age cohort per year
    awareness_rate: float = 0.050  # aware of chip design as a career
    stem_rate: float = 0.35  # aware -> STEM study
    ee_rate: float = 0.12  # STEM -> electrical engineering
    specialization_rate: float = 0.25  # EE -> chip-design specialization
    graduation_rate: float = 0.85  # specialization -> graduated
    entry_rate: float = 0.75  # graduates entering EU chip design jobs
    attrition_rate: float = 0.05  # annual designer attrition
    initial_designers: float = 45_000.0
    initial_demand: float = 60_000.0
    demand_growth: float = 0.05  # EU Chips Act ambition


@dataclass(frozen=True)
class Interventions:
    """Recommendation levers, each a multiplier on a pipeline rate."""

    outreach: float = 1.0  # Rec 1 -> awareness_rate
    campaigns: float = 1.0  # Rec 2 -> specialization_rate
    funding: float = 1.0  # Rec 3 -> graduation & entry rates
    #: Years before an intervention takes effect (programs need setup).
    ramp_years: int = 2


@dataclass
class YearRecord:
    year: int
    new_graduates: float
    designers: float
    demand: float

    @property
    def gap(self) -> float:
        return self.demand - self.designers

    @property
    def gap_fraction(self) -> float:
        return self.gap / self.demand if self.demand else 0.0


@dataclass
class PipelineResult:
    records: list[YearRecord] = field(default_factory=list)

    @property
    def final_gap(self) -> float:
        return self.records[-1].gap if self.records else 0.0

    def year(self, year: int) -> YearRecord:
        for record in self.records:
            if record.year == year:
                return record
        raise KeyError(f"year {year} not simulated")

    def gap_closed_year(self) -> int | None:
        """First simulated year with no shortage, if any."""
        for record in self.records:
            if record.gap <= 0:
                return record.year
        return None


def simulate_pipeline(
    params: PipelineParams = PipelineParams(),
    interventions: Interventions = Interventions(),
    start_year: int = 2025,
    years: int = 12,
) -> PipelineResult:
    """Run the stock-and-flow model.

    The university pipeline is ~5 years long; we approximate it with the
    steady-state flow of the (possibly intervention-boosted) rates, with
    interventions ramping in linearly over ``ramp_years``.
    """
    result = PipelineResult()
    designers = params.initial_designers
    demand = params.initial_demand

    for offset in range(years):
        year = start_year + offset
        if interventions.ramp_years > 0:
            ramp = min(1.0, offset / interventions.ramp_years)
        else:
            ramp = 1.0

        def boosted(rate: float, lever: float) -> float:
            return rate * (1.0 + (lever - 1.0) * ramp)

        awareness = boosted(params.awareness_rate, interventions.outreach)
        specialization = boosted(
            params.specialization_rate, interventions.campaigns
        )
        graduation = min(
            0.98, boosted(params.graduation_rate, interventions.funding)
        )
        entry = min(0.98, boosted(params.entry_rate, interventions.funding))

        graduates = (
            params.school_cohort
            * awareness
            * params.stem_rate
            * params.ee_rate
            * specialization
            * graduation
        )
        new_designers = graduates * entry
        designers = designers * (1.0 - params.attrition_rate) + new_designers
        demand = demand * (1.0 + params.demand_growth)
        result.records.append(
            YearRecord(
                year=year,
                new_graduates=round(graduates, 1),
                designers=round(designers, 1),
                demand=round(demand, 1),
            )
        )
    return result


#: Named scenarios used by the E7 benchmark.
SCENARIOS: dict[str, Interventions] = {
    "baseline": Interventions(),
    "outreach_only": Interventions(outreach=1.8),
    "campaigns_only": Interventions(campaigns=1.5),
    "funding_only": Interventions(funding=1.15),
    "coordinated": Interventions(outreach=1.8, campaigns=1.5, funding=1.15),
}


def scenario_table(years: int = 12) -> list[dict[str, object]]:
    """Final-year gap per scenario — the E7 output table."""
    rows = []
    for name, intervention in SCENARIOS.items():
        result = simulate_pipeline(interventions=intervention, years=years)
        closed = result.gap_closed_year()
        rows.append(
            {
                "scenario": name,
                "final_designers": result.records[-1].designers,
                "final_demand": result.records[-1].demand,
                "final_gap": round(result.final_gap, 1),
                "gap_closed_year": closed if closed is not None else "never",
            }
        )
    return rows


def required_graduate_multiplier(
    params: PipelineParams = PipelineParams(), years: int = 12
) -> float:
    """How many times more graduates are needed to close the gap.

    A bisection over a uniform boost of the graduate flow — the summary
    number for "Europe must scale design education by X" arguments.
    """
    def final_gap(multiplier: float) -> float:
        boosted = replace(
            params,
            awareness_rate=params.awareness_rate * multiplier,
        )
        return simulate_pipeline(boosted, years=years).final_gap

    low, high = 1.0, 50.0
    if final_gap(low) <= 0:
        return 1.0
    for _ in range(60):
        mid = (low + high) / 2.0
        if final_gap(mid) > 0:
            low = mid
        else:
            high = mid
    return round(high, 2)
