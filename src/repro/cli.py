"""Command-line interface: the one-stop front door (Recommendation 7).

``python -m repro <command>`` exposes the enablement platform without
writing any Python — list PDKs and IP, generate Liberty/LEF collateral,
and run the full RTL→GDSII flow on any catalogue IP:

.. code-block:: console

   $ python -m repro pdks
   $ python -m repro ips
   $ python -m repro flow --ip counter --pdk edu130 --out build/
   $ python -m repro flow --ip counter --trace build/trace.jsonl
   $ python -m repro flow --ip alu --continue-on-error --checkpoint-dir ckpt/
   $ python -m repro edit --demo --json build/edit.json
   $ python -m repro cloud --servers 3 --jobs 24 --mtbf-min 120 --seed 7
   $ python -m repro campaign --designs 200 --tenants 4 --seed 7 \\
         --json build/campaign.json
   $ python -m repro trace build/trace.jsonl
   $ python -m repro lint --ip counter --json build/lint.json
   $ python -m repro lint --demo --waive 'net.high-fanout'
   $ python -m repro lint --ip counter --formal
   $ python -m repro prove --ip counter --pdk edu130 --json build/lec.json
   $ python -m repro liberty edu130 > edu130.lib
"""

from __future__ import annotations

import argparse
import os
import random
import sys

from .core.flow import run_flow
from .core.options import FlowOptions
from .core.reporting import full_report
from .formal import (
    LecError,
    lec_flow,
    prove_facts,
    refine_lint_report,
    replay_counterexamples,
)
from .hdl.ir import HdlError
from .hdl.verilog import to_verilog
from .ip.base import quality_score
from .ip.catalog import GENERATORS, catalogue, generate
from .layout.defio import from_physical, write_def
from .lint import (
    LintError,
    Waiver,
    lint_design,
    load_waiver_file,
    make_defective_module,
    make_defective_netlist,
)
from .obs import Tracer, get_metrics, load_trace, render_trace, write_trace
from .pdk.lef import write_library_lef
from .pdk.liberty import write_liberty
from .pdk.pdks import get_pdk, list_pdks
from .synth import synthesize


def _cmd_pdks(args) -> int:
    print(f"{'name':8s} {'nm':>5s} {'metals':>6s} {'open':>5s} "
          f"{'NDA':>4s} {'mm2 EUR':>9s} {'days':>5s}")
    for name in list_pdks():
        pdk = get_pdk(name)
        print(
            f"{name:8s} {pdk.node.feature_nm:5.0f} "
            f"{pdk.node.metal_layers:6d} {str(pdk.is_open):>5s} "
            f"{str(pdk.terms.nda_required):>4s} "
            f"{pdk.terms.mpw_cost_per_mm2_eur:9.0f} "
            f"{pdk.terms.total_turnaround_days:5d}"
        )
    return 0


def _cmd_cells(args) -> int:
    library = get_pdk(args.pdk).library
    print(f"{'cell':12s} {'area um2':>9s} {'cap fF':>7s} "
          f"{'tp ps':>7s} {'leak nW':>8s}")
    for name in sorted(library.cells):
        cell = library.cells[name]
        print(f"{name:12s} {cell.area_um2:9.3f} {cell.input_cap_ff:7.2f} "
              f"{cell.intrinsic_ps:7.2f} {cell.leakage_nw:8.4f}")
    return 0


def _cmd_ips(args) -> int:
    print(f"{'ip':18s} {'quality':>8s} {'verified':>9s}  description")
    for name in catalogue():
        ip = generate(name)
        description = ip.collateral.description.split(";")[0]
        print(f"{name:18s} {quality_score(ip):8.2f} "
              f"{ip.verification.name:>9s}  {description[:60]}")
    return 0


def _cmd_flow(args) -> int:
    if args.verilog:
        from .hdl.verilog_parser import parse_verilog

        with open(args.verilog) as handle:
            module = parse_verilog(handle.read())
        print(f"parsed {module.name} from {args.verilog}")
    elif args.ip:
        if args.ip not in GENERATORS:
            print(f"error: unknown IP {args.ip!r}; try: python -m repro ips",
                  file=sys.stderr)
            return 2
        ip = generate(args.ip)
        testbench = ip.verify(cycles=args.verify_cycles)
        print(f"testbench: {testbench.summary()}")
        if not testbench.passed:
            return 1
        module = ip.module
    else:
        print("error: one of --ip or --verilog is required", file=sys.stderr)
        return 2

    pdk = get_pdk(args.pdk)
    store = None
    if args.checkpoint_dir:
        from .resil import DirectoryCheckpointStore

        store = DirectoryCheckpointStore(args.checkpoint_dir)
    options = FlowOptions(
        preset=args.preset,
        clock_period_ps=args.period_ps,
        seed=args.seed,
        continue_on_error=args.continue_on_error,
        checkpoints=store,
    )
    tracer = Tracer() if args.trace else None
    result = run_flow(module, pdk, options, tracer=tracer)
    print(result.summary())
    for failure in result.failures:
        print(f"  failure {failure}", file=sys.stderr)
    if store is not None:
        print(f"checkpoints: {store.hits} hit(s), {store.misses} miss(es)")

    if args.trace:
        directory = os.path.dirname(args.trace)
        if directory:
            os.makedirs(directory, exist_ok=True)
        write_trace(args.trace, tracer, metrics=get_metrics())
        print(f"trace written to {args.trace} ({len(tracer.spans)} spans)")

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        base = os.path.join(args.out, module.name)
        with open(base + ".v", "w") as handle:
            handle.write(to_verilog(module))
        with open(base + ".rpt", "w") as handle:
            handle.write(full_report(result))
        if result.physical is not None:
            with open(base + ".def", "w") as handle:
                handle.write(write_def(from_physical(result.physical)))
        if result.gds_bytes is not None:
            with open(base + ".gds", "wb") as handle:
                handle.write(result.gds_bytes)
        print(f"collaterals written to {base}.*")
    return 0 if result.ok else 1


def _cmd_edit(args) -> int:
    """Interactive edit loop: open a Workspace, apply one module edit.

    Stdout is deterministic (no wall-clock times); ``--json`` captures
    the machine-readable report including millisecond timings.
    """
    import json
    import time

    from .inter import Workspace

    if args.demo:
        if args.module or args.rtl:
            print("error: --demo replaces --module/--rtl", file=sys.stderr)
            return 2
        if args.ip != "soc":
            print("error: --demo edits the catalogue 'soc' IP",
                  file=sys.stderr)
            return 2
        from .ip.soc import sevenseg_recode_rtl

        module_name = "sevenseg"
        new_rtl = sevenseg_recode_rtl()
    elif args.module and args.rtl:
        module_name = args.module
        with open(args.rtl) as handle:
            new_rtl = handle.read()
    else:
        print("error: either --demo or both --module and --rtl are required",
              file=sys.stderr)
        return 2

    if args.ip not in GENERATORS:
        print(f"error: unknown IP {args.ip!r}; try: python -m repro ips",
              file=sys.stderr)
        return 2
    ip = generate(args.ip)
    pdk = get_pdk(args.pdk)
    options = FlowOptions(
        preset=args.preset, clock_period_ps=args.period_ps, seed=args.seed
    )

    start = time.perf_counter()
    ws = Workspace.open(ip.module, pdk, options=options)
    open_ms = (time.perf_counter() - start) * 1e3
    print(f"opened {ip.module.name} on {args.pdk}: "
          f"{len(ws.result.synthesis.mapped.cells)} cells")

    start = time.perf_counter()
    report = ws.edit(module_name, new_rtl)
    edit_ms = (time.perf_counter() - start) * 1e3
    if report.clean:
        print(f"edit {module_name}: clean (no logic change)")
    else:
        print(f"edit {module_name}: dirty={sorted(report.dirty)} "
              f"cones={len(report.cones)} "
              f"fallback={report.fallback or 'none'}")
        if report.lec is not None:
            verdict = "equivalent" if report.lec.equivalent else "DIVERGES"
            print(f"lec: {verdict}")
    print(report.result.summary())

    proven = report.lec is None or report.lec.equivalent
    ok = report.result.ok and proven
    if args.json:
        directory = os.path.dirname(args.json)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.json, "w") as handle:
            json.dump(
                {
                    "design": ip.module.name,
                    "pdk": args.pdk,
                    "module": module_name,
                    "clean": report.clean,
                    "dirty": sorted(report.dirty),
                    "cones": len(report.cones),
                    "fallback": report.fallback,
                    "lec_equivalent": None if report.lec is None
                    else report.lec.equivalent,
                    "open_ms": round(open_ms, 3),
                    "edit_ms": round(edit_ms, 3),
                    "ok": ok,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"report written to {args.json}")
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        base = os.path.join(args.out, ip.module.name)
        if report.result.gds_bytes is not None:
            with open(base + ".gds", "wb") as handle:
                handle.write(report.result.gds_bytes)
            print(f"layout written to {base}.gds")
    return 0 if ok else 1


def _cmd_lint(args) -> int:
    """Static analysis with the signoff exit-code contract.

    The return code is nonzero only for unwaived ``error``-severity
    findings; warnings and info never fail the command unless
    ``--strict`` promotes warnings to errors.
    """
    try:
        waivers = tuple(Waiver.parse(spec) for spec in args.waive) + (
            load_waiver_file(args.waiver_file) if args.waiver_file else ()
        )
    except (LintError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.demo:
        module = make_defective_module()
        report = lint_design(
            module,
            netlist=make_defective_netlist(),
            waivers=waivers,
        )
    else:
        if args.verilog:
            from .hdl.verilog_parser import parse_verilog

            with open(args.verilog) as handle:
                module = parse_verilog(handle.read())
        elif args.ip:
            if args.ip not in GENERATORS:
                print(f"error: unknown IP {args.ip!r}; try: "
                      "python -m repro ips", file=sys.stderr)
                return 2
            module = generate(args.ip).module
        else:
            print("error: one of --ip, --verilog or --demo is required",
                  file=sys.stderr)
            return 2

        mapped = None
        if not args.rtl_only:
            try:
                module.validate()
            except HdlError as exc:
                print(f"note: netlist lint skipped, RTL does not "
                      f"elaborate ({exc})", file=sys.stderr)
            else:
                mapped = synthesize(
                    module, get_pdk(args.pdk).library
                ).mapped
        report = lint_design(module, mapped=mapped, waivers=waivers)

    if args.formal:
        # SAT refinement: prove or refute the const-expr / dead-mux-arm
        # suspicions.  Needs an elaborable module — the solver reasons
        # about semantics, which a non-validating design does not have.
        try:
            module.validate()
        except HdlError as exc:
            print(f"note: formal refinement skipped, RTL does not "
                  f"elaborate ({exc})", file=sys.stderr)
        else:
            report = refine_lint_report(report, prove_facts(module))

    if args.strict:
        report = report.promote_warnings()

    if args.json == "-":
        print(report.to_json())
    else:
        print(report.render())
        if args.json:
            directory = os.path.dirname(args.json)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(args.json, "w") as handle:
                handle.write(report.to_json())
            print(f"lint report written to {args.json}")
    return 1 if report.errors else 0


def _cmd_prove(args) -> int:
    """SAT-based LEC of the synthesis pipeline, lint-style exit codes.

    Returns 0 when every stage is proved equivalent, 1 when any cone has
    a counterexample or exhausted the solver budget, 2 on usage errors.
    Counterexamples are replayed on the lockstep gate-level simulator so
    the formal verdict is cross-checked against simulation semantics.
    """
    if args.verilog:
        from .hdl.verilog_parser import parse_verilog

        with open(args.verilog) as handle:
            module = parse_verilog(handle.read())
    elif args.ip:
        if args.ip not in GENERATORS:
            print(f"error: unknown IP {args.ip!r}; try: python -m repro ips",
                  file=sys.stderr)
            return 2
        module = generate(args.ip).module
    else:
        print("error: one of --ip or --verilog is required", file=sys.stderr)
        return 2

    try:
        module.validate()
    except HdlError as exc:
        print(f"error: RTL does not elaborate: {exc}", file=sys.stderr)
        return 2

    synth = synthesize(module, get_pdk(args.pdk).library)
    try:
        report = lec_flow(module, synth, max_conflicts=args.max_conflicts)
    except LecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    implementations = {
        "post_opt": synth.netlist,
        "post_mapping": synth.mapped,
    }
    if args.json == "-":
        print(report.to_json())
        return 0 if report.passed else 1
    print(report.summary())
    for stage, check in report.checks.items():
        # All replayable witnesses of a stage go through one packed
        # batch (each occupies a simulation lane) instead of one
        # simulator pair per counterexample.
        replayable = [
            verdict.counterexample
            for verdict in check.cones
            if verdict.counterexample is not None
            and verdict.counterexample.kind in ("output", "state")
            and implementations.get(stage) is not None
        ]
        replays = {}
        if replayable:
            replays = dict(zip(
                map(id, replayable),
                replay_counterexamples(
                    module, implementations[stage], replayable
                ),
            ))
        for verdict in check.cones:
            if verdict.status == "equal":
                continue
            print(f"  {stage} {verdict.cone}: {verdict.status}")
            cex = verdict.counterexample
            if cex is None:
                continue
            print(f"    inputs={cex.inputs} state={cex.state} "
                  f"expect={cex.expect} got={cex.got}")
            if id(cex) in replays:
                confirmed = replays[id(cex)] is not None
                print(f"    simulation replay: "
                      f"{'reproduces' if confirmed else 'DOES NOT reproduce'}")

    if args.json:
        directory = os.path.dirname(args.json)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"LEC report written to {args.json}")
    return 0 if report.passed else 1


def _cmd_lvs(args) -> int:
    """GDS-in signoff: extract a netlist from stream bytes and LVS it.

    Implements the design, streams out GDSII, then treats those *bytes*
    as the only source of truth: the netlist is re-extracted from
    geometry alone, compared net-by-net against the mapped netlist and
    LEC-proved equivalent.  ``--trojan`` plants one seeded layout
    mutation first — the run must then fail, which makes this the
    self-test of the whole extraction stack.  Exit codes follow lint:
    0 clean, 1 mismatches found, 2 usage errors.
    """
    from .extract import TROJAN_KINDS, mutate_gds, run_lvs
    from .layout.chip import build_chip_gds
    from .layout.gds import write_gds
    from .pnr.physical import implement

    if args.verilog:
        from .hdl.verilog_parser import parse_verilog

        with open(args.verilog) as handle:
            module = parse_verilog(handle.read())
    elif args.ip:
        if args.ip not in GENERATORS:
            print(f"error: unknown IP {args.ip!r}; try: python -m repro ips",
                  file=sys.stderr)
            return 2
        module = generate(args.ip).module
    else:
        print("error: one of --ip or --verilog is required", file=sys.stderr)
        return 2
    if args.trojan is not None and args.trojan not in TROJAN_KINDS:
        print(f"error: unknown trojan kind {args.trojan!r}; "
              f"known: {', '.join(TROJAN_KINDS)}", file=sys.stderr)
        return 2

    try:
        module.validate()
    except HdlError as exc:
        print(f"error: RTL does not elaborate: {exc}", file=sys.stderr)
        return 2

    pdk = get_pdk(args.pdk)
    mapped = synthesize(module, pdk.library).mapped
    design = implement(mapped, pdk)
    data = write_gds(build_chip_gds(design))
    print(f"streamed {len(data)} bytes of GDSII for {mapped.name}")
    if args.trojan is not None:
        try:
            data, description = mutate_gds(
                data, seed=args.seed, kind=args.trojan
            )
        except ValueError as exc:
            print(f"error: trojan not applicable: {exc}", file=sys.stderr)
            return 2
        print(f"planted {description}")

    report = run_lvs(data, mapped, pdk)
    if args.json == "-":
        print(report.to_json())
        return 0 if report.clean else 1
    print(report.summary())
    for mismatch in report.mismatches:
        print(f"  {mismatch}")
    if args.json:
        directory = os.path.dirname(args.json)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"LVS report written to {args.json}")
    return 0 if report.clean else 1


def _cmd_cloud(args) -> int:
    """Fault-injected cloud capacity simulation (deterministic per seed).

    Everything printed to stdout is a pure function of the flags, so CI
    can run the same simulation twice and ``diff`` the outputs to prove
    seeded fault injection is deterministic; progress messages go to
    stderr.
    """
    from .core.cloud import CloudPlatform
    from .resil import ExponentialBackoff, FaultModel

    tracer = Tracer() if args.trace else None
    fault_model = FaultModel(
        seed=args.seed,
        mtbf_min=args.mtbf_min if args.mtbf_min > 0 else float("inf"),
        mttr_min=args.mttr_min,
        preemption_prob=args.preempt,
        fatal_prob=args.fatal,
    )
    platform = CloudPlatform(
        servers=args.servers,
        tracer=tracer,
        fault_model=fault_model,
        retry_policy=ExponentialBackoff(max_attempts=args.max_attempts),
    )
    # The workload is drawn from its own seeded stream so the same flags
    # always submit the same jobs.
    workload = random.Random(args.seed)
    for index in range(args.jobs):
        duration = round(workload.uniform(10.0, 240.0), 3)
        submit = round(workload.uniform(0.0, args.window_min), 3)
        deadline = None
        if args.deadlines:
            deadline = round(submit + duration * workload.uniform(2.0, 6.0), 3)
        platform.submit(
            f"user{index % 5}", duration, submit, deadline_min=deadline
        )
    stats = platform.run()

    print(f"servers={args.servers} jobs={args.jobs} seed={args.seed} "
          f"mtbf_min={fault_model.mtbf_min:g} preempt={args.preempt:g}")
    for job in platform.jobs():
        finish = f"{job.finish_min:.3f}" if job.finish_min is not None else "-"
        print(f"job {job.job_id:3d} {job.user:6s} {job.outcome:8s} "
              f"attempts={job.attempts} retries={job.retries} "
              f"finish={finish}")
    print(f"completed={stats.jobs} failed={stats.failed} "
          f"retries={stats.retries} preemptions={stats.preemptions} "
          f"faults={stats.faults} deadline_misses={stats.deadline_misses}")
    print(f"mean_wait_min={stats.mean_wait_min:.3f} "
          f"p95_wait_min={stats.p95_wait_min:.3f} "
          f"utilization={stats.utilization:.4f} "
          f"makespan_min={stats.makespan_min:.3f}")

    if args.trace:
        directory = os.path.dirname(args.trace)
        if directory:
            os.makedirs(directory, exist_ok=True)
        write_trace(args.trace, tracer, metrics=platform.metrics)
        print(f"trace written to {args.trace} ({len(tracer.spans)} spans)",
              file=sys.stderr)
    return 0


#: Synthetic campaign design pool: small catalogue IPs with parameter
#: variants, weighted duplicate-heavy (the classroom distribution — most
#: students submit the assignment design, a few go off-script).
_CAMPAIGN_POOL = (
    # (ip name, params, draw weight)
    ("counter", {"width": 4}, 8),
    ("counter", {"width": 6}, 6),
    ("counter", {"width": 8}, 4),
    ("gray_counter", {"width": 4}, 4),
    ("gray_counter", {"width": 6}, 2),
    ("shift_register", {"width": 4, "depth": 4}, 3),
    ("lfsr", {"width": 8}, 2),
    ("priority_encoder", {"width": 4}, 2),
    ("pwm", {"width": 6}, 2),
    ("seven_seg", {}, 1),
)


def synth_campaign_workload(campaign, designs: int, tenants: int,
                            seed: int) -> None:
    """Submit a seeded duplicate-heavy workload into ``campaign``.

    A pure function of ``(designs, tenants, seed)``: the same flags
    always submit the same modules with the same tenants, priorities
    and deadlines, so two runs are diffable end to end.  Tenant load is
    deliberately skewed (tenant 0 submits roughly half the campaign) to
    exercise fair-share scheduling.
    """
    rng = random.Random(seed)
    modules = {}
    weighted = [
        entry for entry in _CAMPAIGN_POOL for _ in range(entry[2])
    ]
    for _ in range(designs):
        name, params, _ = rng.choice(weighted)
        ident = (name, tuple(sorted(params.items())))
        if ident not in modules:
            modules[ident] = generate(name, **params).module
        # Skewed tenant draw: uni0 gets weight ~len(tenants).
        weights = [tenants] + [1] * (tenants - 1)
        tenant = rng.choices(range(tenants), weights=weights)[0]
        deadline = round(rng.uniform(60.0, 2_000.0), 3)
        campaign.submit(
            f"uni{tenant}", modules[ident], "edu130",
            priority=rng.choice((0, 0, 0, 1)),
            deadline_min=deadline,
        )


def _cmd_campaign(args) -> int:
    """Multi-tenant campaign over a seeded synthetic workload.

    Mirrors the ``repro cloud`` contract: everything on stdout is a
    pure function of the flags (dispatch order, cache hits, simulated
    latency), so CI can diff two runs byte-for-byte; wall-clock numbers
    go to stderr and the ``--json`` report.
    """
    from .campaign import Campaign

    if args.designs < 1:
        print("error: --designs must be at least 1", file=sys.stderr)
        return 2
    if args.tenants < 1:
        print("error: --tenants must be at least 1", file=sys.stderr)
        return 2
    campaign = Campaign(workers=args.workers, seed=args.seed)
    synth_campaign_workload(campaign, args.designs, args.tenants, args.seed)
    report = campaign.run()

    print(f"designs={args.designs} tenants={args.tenants} "
          f"workers={args.workers} seed={args.seed}")
    for job in sorted(campaign.queue.jobs(), key=lambda j: j.order):
        print(f"job {job.order:4d} {job.tenant:6s} "
              f"{job.module.name:16s} {job.key[:10]} "
              f"{'hit ' if job.cache_hit else 'miss'} "
              f"sim_start={job.sim_start_min:9.3f} "
              f"sim_finish={job.sim_finish_min:9.3f}")
    print(report.render())
    print(f"wall: elapsed_s={report.elapsed_s:.3f} "
          f"throughput_jobs_per_s={report.throughput_jobs_per_s:.2f}",
          file=sys.stderr)

    if args.json:
        directory = os.path.dirname(args.json)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"campaign report written to {args.json}", file=sys.stderr)
    return 0 if report.failed == 0 else 1


def _cmd_trace(args) -> int:
    try:
        data = load_trace(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(render_trace(data, unit=args.unit))
    except BrokenPipeError:  # e.g. piped into head
        return 0
    return 0


def _cmd_liberty(args) -> int:
    print(write_liberty(get_pdk(args.pdk).library), end="")
    return 0


def _cmd_lef(args) -> int:
    print(write_library_lef(get_pdk(args.pdk).library), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="chip-design enablement toolkit (DATE 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("pdks", help="list the built-in PDKs").set_defaults(
        fn=_cmd_pdks
    )

    cells = sub.add_parser("cells", help="list a PDK's standard cells")
    cells.add_argument("pdk", choices=list_pdks())
    cells.set_defaults(fn=_cmd_cells)

    sub.add_parser(
        "ips", help="list the IP catalogue with quality scores"
    ).set_defaults(fn=_cmd_ips)

    flow = sub.add_parser("flow", help="run the full flow on a catalogue IP")
    flow.add_argument("--ip", help="catalogue IP name")
    flow.add_argument("--verilog", help="path to a Verilog file to run instead")
    flow.add_argument("--pdk", default="edu130", choices=list_pdks())
    flow.add_argument("--preset", default="open",
                      choices=("open", "commercial"))
    flow.add_argument("--period-ps", type=float, default=5_000.0)
    flow.add_argument("--verify-cycles", type=int, default=200)
    flow.add_argument("--seed", type=int, default=1,
                      help="placement/backend seed")
    flow.add_argument("--continue-on-error", action="store_true",
                      help="record stage failures instead of aborting; "
                      "produce the best partial result")
    flow.add_argument("--checkpoint-dir", metavar="DIR",
                      help="save/resume per-stage checkpoints under DIR")
    flow.add_argument("--out", help="directory for collateral files")
    flow.add_argument("--trace",
                      help="write a JSONL trace of the run to this path")
    flow.set_defaults(fn=_cmd_flow)

    edit = sub.add_parser(
        "edit",
        help="open an incremental Workspace and apply one module edit",
    )
    edit.add_argument("--ip", default="soc", help="catalogue IP name")
    edit.add_argument("--pdk", default="edu130", choices=list_pdks())
    edit.add_argument("--preset", default="open",
                      choices=("open", "commercial"))
    edit.add_argument("--period-ps", type=float, default=6_000.0)
    edit.add_argument("--seed", type=int, default=1,
                      help="placement/backend seed")
    edit.add_argument("--module", help="name of the module to replace")
    edit.add_argument("--rtl", metavar="FILE",
                      help="Verilog file with the module's new body")
    edit.add_argument("--demo", action="store_true",
                      help="apply the built-in seven-segment re-encode "
                      "edit to the catalogue SoC")
    edit.add_argument("--json", metavar="FILE",
                      help="write the edit report (with timings) as JSON")
    edit.add_argument("--out", help="directory for the edited GDS")
    edit.set_defaults(fn=_cmd_edit)

    cloud = sub.add_parser(
        "cloud",
        help="simulate shared-compute capacity with failure injection",
    )
    cloud.add_argument("--servers", type=int, default=4)
    cloud.add_argument("--jobs", type=int, default=24)
    cloud.add_argument("--seed", type=int, default=7,
                       help="seeds both the workload and the fault model")
    cloud.add_argument("--window-min", type=float, default=480.0,
                       help="submission window in simulated minutes")
    cloud.add_argument("--mtbf-min", type=float, default=0.0,
                       help="mean minutes between server faults "
                       "(0 disables fault strikes)")
    cloud.add_argument("--mttr-min", type=float, default=30.0,
                       help="server repair time after a fault")
    cloud.add_argument("--preempt", type=float, default=0.0,
                       help="per-execution preemption probability")
    cloud.add_argument("--fatal", type=float, default=0.0,
                       help="probability a fault is fatal to the job")
    cloud.add_argument("--max-attempts", type=int, default=4,
                       help="retry budget per job")
    cloud.add_argument("--deadlines", action="store_true",
                       help="attach a deadline to every job")
    cloud.add_argument("--trace",
                       help="write a JSONL trace (simulated minutes)")
    cloud.set_defaults(fn=_cmd_cloud)

    lint = sub.add_parser(
        "lint",
        help="static analysis: RTL + netlist rule checks with waivers",
    )
    lint.add_argument("--ip", help="catalogue IP name")
    lint.add_argument("--verilog", help="path to a Verilog file to lint")
    lint.add_argument("--demo", action="store_true",
                      help="lint the built-in defective demo designs")
    lint.add_argument("--pdk", default="edu130", choices=list_pdks(),
                      help="library used for the netlist lint target")
    lint.add_argument("--rtl-only", action="store_true",
                      help="skip synthesis and the netlist lint target")
    lint.add_argument("--json", nargs="?", const="-", metavar="PATH",
                      help="write the JSON report to PATH (or stdout)")
    lint.add_argument("--waive", action="append", default=[],
                      metavar="RULE[@LOCATION]",
                      help="waive findings matching the glob (repeatable)")
    lint.add_argument("--waiver-file",
                      help="file of RULE[@LOCATION]  # reason lines")
    lint.add_argument("--strict", action="store_true",
                      help="promote warnings to errors")
    lint.add_argument("--formal", action="store_true",
                      help="SAT-refine findings: proved facts promote to "
                      "error, refuted suspicions are dropped")
    lint.set_defaults(fn=_cmd_lint)

    prove = sub.add_parser(
        "prove",
        help="SAT-based logic equivalence check: RTL vs gates vs cells",
    )
    prove.add_argument("--ip", help="catalogue IP name")
    prove.add_argument("--verilog", help="path to a Verilog file to prove")
    prove.add_argument("--pdk", default="edu130", choices=list_pdks(),
                       help="library the design is mapped onto")
    prove.add_argument("--max-conflicts", type=int, default=100_000,
                       help="CDCL conflict budget per cone (exhaustion "
                       "reports 'unknown', never 'equivalent')")
    prove.add_argument("--json", nargs="?", const="-", metavar="PATH",
                       help="write the JSON report to PATH (or stdout)")
    prove.set_defaults(fn=_cmd_prove)

    lvs = sub.add_parser(
        "lvs",
        help="GDS-in signoff: extract a netlist from the stream bytes, "
        "LVS it against the mapped netlist and prove equivalence",
    )
    lvs.add_argument("--ip", help="catalogue IP name")
    lvs.add_argument("--verilog", help="path to a Verilog file to check")
    lvs.add_argument("--pdk", default="edu130", choices=list_pdks(),
                     help="PDK to implement on")
    lvs.add_argument("--trojan", metavar="KIND",
                     help="plant one seeded layout trojan first "
                     "(rogue_gate, reroute, delete_via, swap_cells); "
                     "the check must then fail")
    lvs.add_argument("--seed", type=int, default=0,
                     help="trojan seed (with --trojan)")
    lvs.add_argument("--json", nargs="?", const="-", metavar="PATH",
                     help="write the JSON report to PATH (or stdout)")
    lvs.set_defaults(fn=_cmd_lvs)

    campaign = sub.add_parser(
        "campaign",
        help="run a seeded multi-tenant design campaign with fair-share "
        "scheduling and the global result cache",
    )
    campaign.add_argument("--designs", type=int, default=40,
                          help="number of design submissions to synthesize")
    campaign.add_argument("--tenants", type=int, default=4,
                          help="number of tenants (universities) submitting")
    campaign.add_argument("--workers", type=int, default=0,
                          help="process-pool size (0/1 = serial in-process)")
    campaign.add_argument("--seed", type=int, default=7,
                          help="seeds the workload and the scheduler")
    campaign.add_argument("--json", metavar="PATH",
                          help="write the full report (incl. wall-clock "
                          "throughput) to PATH")
    campaign.set_defaults(fn=_cmd_campaign)

    trace = sub.add_parser(
        "trace", help="render a JSONL trace file as a timeline + profile"
    )
    trace.add_argument("file", help="trace file from 'flow --trace'")
    trace.add_argument("--unit", default="ms", choices=("s", "ms", "us"),
                       help="time unit for the rendered tables")
    trace.set_defaults(fn=_cmd_trace)

    liberty = sub.add_parser("liberty", help="emit a PDK's Liberty file")
    liberty.add_argument("pdk", choices=list_pdks())
    liberty.set_defaults(fn=_cmd_liberty)

    lef = sub.add_parser("lef", help="emit a PDK's LEF file")
    lef.add_argument("pdk", choices=list_pdks())
    lef.set_defaults(fn=_cmd_lef)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
