"""Power analysis: activity propagation, dynamic/leakage power,
clock-gating opportunity analysis."""

from .engine import PowerAnalyzer, PowerReport
from .gating import GatingCandidate, GatingReport, analyze_clock_gating

__all__ = [
    "GatingCandidate",
    "GatingReport",
    "PowerAnalyzer",
    "PowerReport",
    "analyze_clock_gating",
]
