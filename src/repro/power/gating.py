"""Clock-gating opportunity analysis.

The enable-mux idiom — ``q.next = mux(en, new_value, q)`` — burns clock
power every cycle even when nothing changes.  Replacing the recirculating
mux with a gated clock is the first power optimization every low-power
course teaches.  This analyzer finds the idiom in the RTL, estimates the
clock power saved from each enable's activation probability, and reports
the register coverage — the groundwork for a gating transform pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl.ir import Expr, Module, Mux, Ref, Register
from ..pdk.node import ProcessNode
from ..pdk.cells import Library


@dataclass(frozen=True)
class GatingCandidate:
    """One register bank that could be clock gated."""

    register: str
    width: int
    #: Probability the register actually loads a new value per cycle.
    enable_probability: float


@dataclass
class GatingReport:
    candidates: list[GatingCandidate] = field(default_factory=list)
    total_register_bits: int = 0
    clock_power_before_uw: float = 0.0
    clock_power_after_uw: float = 0.0

    @property
    def gated_bits(self) -> int:
        return sum(c.width for c in self.candidates)

    @property
    def coverage(self) -> float:
        if self.total_register_bits == 0:
            return 0.0
        return self.gated_bits / self.total_register_bits

    @property
    def saving_fraction(self) -> float:
        if self.clock_power_before_uw == 0:
            return 0.0
        return 1.0 - self.clock_power_after_uw / self.clock_power_before_uw

    def summary(self) -> str:
        return (
            f"clock gating: {len(self.candidates)} banks "
            f"({self.gated_bits}/{self.total_register_bits} bits), "
            f"clock power {self.clock_power_before_uw:.3f} -> "
            f"{self.clock_power_after_uw:.3f} uW "
            f"({self.saving_fraction:.0%} saved)"
        )


def _enable_of(register: Register) -> Expr | None:
    """The select expression if ``next`` is the enable-mux idiom."""
    nxt = register.next
    if not isinstance(nxt, Mux):
        return None
    recirculates = (
        isinstance(nxt.if_false, Ref) and nxt.if_false.signal is register.signal
    )
    if recirculates:
        return nxt.sel
    inverted = (
        isinstance(nxt.if_true, Ref) and nxt.if_true.signal is register.signal
    )
    if inverted:
        return nxt.sel  # enable is active-low; probability handled below
    return None


def analyze_clock_gating(
    module: Module,
    library: Library,
    node: ProcessNode,
    frequency_mhz: float = 100.0,
    enable_probability: float = 0.5,
) -> GatingReport:
    """Find enable-mux registers and estimate the clock-power saving.

    ``enable_probability`` is the assumed activation rate of every enable
    (refine per design with profiling data).  Clock power per flip-flop is
    the DFF clock-pin capacitance switching every cycle; a gated flop only
    pays it on active cycles plus a 5% gating-cell overhead.
    """
    if not 0.0 <= enable_probability <= 1.0:
        raise ValueError("enable probability must be within [0, 1]")
    report = GatingReport()
    report.total_register_bits = sum(
        reg.signal.width for reg in module.registers
    )
    for register in module.registers:
        if _enable_of(register) is not None:
            report.candidates.append(
                GatingCandidate(
                    register=register.signal.name,
                    width=register.signal.width,
                    enable_probability=enable_probability,
                )
            )

    dff_cap_f = library.dff.input_cap_ff * 1e-15
    vdd = node.voltage_v
    freq_hz = frequency_mhz * 1e6
    per_bit_w = dff_cap_f * vdd * vdd * freq_hz

    before = report.total_register_bits * per_bit_w
    ungated_bits = report.total_register_bits - report.gated_bits
    after = ungated_bits * per_bit_w + sum(
        c.width * per_bit_w * (c.enable_probability + 0.05)
        for c in report.candidates
    )
    report.clock_power_before_uw = round(before * 1e6, 6)
    report.clock_power_after_uw = round(min(before, after) * 1e6, 6)
    return report
