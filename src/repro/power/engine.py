"""Power analysis: switching-activity propagation + leakage.

Signal probabilities are propagated through cell truth tables under the
classic independence assumption; switching activity per net is
``alpha = 2 p (1 - p)`` (probability of a transition per cycle for a
temporally independent signal).  Dynamic power per net is then

    P = 0.5 * alpha * C_net * Vdd^2 * f

and leakage is summed from the library's per-cell values.  These are the
"PPA" power numbers the flow reports (experiments E4, E12).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..pdk.node import ProcessNode
from ..synth.mapped import MappedNetlist
from ..sta.engine import TimingAnalyzer


@dataclass
class PowerReport:
    """Power breakdown at one operating point."""

    frequency_mhz: float
    dynamic_uw: float
    leakage_uw: float
    activities: dict[int, float] = field(default_factory=dict)

    @property
    def total_uw(self) -> float:
        return self.dynamic_uw + self.leakage_uw

    @property
    def leakage_fraction(self) -> float:
        total = self.total_uw
        return self.leakage_uw / total if total > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{self.total_uw:.2f} uW @ {self.frequency_mhz:.0f} MHz "
            f"(dynamic {self.dynamic_uw:.2f}, leakage {self.leakage_uw:.4f})"
        )


class PowerAnalyzer:
    """Activity propagation and power estimation over a mapped netlist."""

    def __init__(
        self,
        mapped: MappedNetlist,
        node: ProcessNode,
        wire_lengths_um: dict[int, float] | None = None,
        input_probabilities: dict[str, float] | None = None,
        tracer=None,
        metrics=None,
    ):
        self.mapped = mapped
        self.node = node
        self._tracer = tracer if tracer is not None else get_tracer()
        self._metrics = metrics if metrics is not None else get_metrics()
        self.timing = TimingAnalyzer(mapped, node, wire_lengths_um,
                                     tracer=self._tracer,
                                     metrics=self._metrics)
        self.input_probabilities = input_probabilities or {}

    def signal_probabilities(self) -> dict[int, float]:
        """Probability of each net being 1, assuming independent inputs."""
        prob: dict[int, float] = {}
        for name, nets in self.mapped.inputs.items():
            p = self.input_probabilities.get(name, 0.5)
            for net in nets:
                prob[net] = p
        # Sequential outputs: steady-state approximation p(q) = p(d);
        # seeded at 0.5 and refined by iterating twice through the logic.
        for inst in self.mapped.seq_cells:
            prob[inst.pins[inst.cell.output]] = 0.5

        order = self.mapped.topo_comb()
        for _ in range(2):  # second sweep refines register feedback loops
            for inst in order:
                ins = [prob.get(n, 0.5) for n in inst.input_nets()]
                out = inst.pins[inst.cell.output]
                prob[out] = _output_probability(inst.cell.function, ins)
            for inst in self.mapped.seq_cells:
                q = inst.pins[inst.cell.output]
                prob[q] = prob.get(inst.pins["d"], 0.5)
        return prob

    def analyze(self, frequency_mhz: float) -> PowerReport:
        tracer = self._tracer
        with tracer.span("power.analyze") as root:
            with tracer.span("power.probabilities"):
                prob = self.signal_probabilities()
            freq_hz = frequency_mhz * 1e6
            vdd = self.node.voltage_v

            with tracer.span("power.sum") as sp:
                dynamic_w = 0.0
                activities: dict[int, float] = {}
                driver = self.mapped.net_driver()
                for net in driver:
                    p = prob.get(net, 0.5)
                    alpha = 2.0 * p * (1.0 - p)
                    activities[net] = alpha
                    cap_f = self.timing.net_load_ff(net) * 1e-15
                    dynamic_w += 0.5 * alpha * cap_f * vdd * vdd * freq_hz
                # Clock network toggles every cycle (alpha = 1) into each DFF.
                clock_cap_f = (
                    len(self.mapped.seq_cells)
                    * self.mapped.library.dff.input_cap_ff
                    * 1e-15
                )
                dynamic_w += clock_cap_f * vdd * vdd * freq_hz

                leakage_w = self.mapped.leakage_nw() * 1e-9
                sp.set(nets=len(activities))

            report = PowerReport(
                frequency_mhz=frequency_mhz,
                dynamic_uw=round(dynamic_w * 1e6, 6),
                leakage_uw=round(leakage_w * 1e6, 6),
                activities=activities,
            )
            root.set(frequency_mhz=frequency_mhz, total_uw=report.total_uw)
        self._metrics.counter("power.analyses").inc()
        return report


def _output_probability(function, input_probs: list[float]) -> float:
    """P(out=1) by weighting the truth table with input probabilities."""
    if function is None:  # sequential cells handled by the caller
        return 0.5
    if not input_probs:
        return float(function())
    total = 0.0
    for combo in itertools.product((0, 1), repeat=len(input_probs)):
        weight = 1.0
        for bit, p in zip(combo, input_probs):
            weight *= p if bit else (1.0 - p)
        if function(*combo):
            total += weight
    return total
