"""Tests for the analog substrate: DC solving, transient, sizing."""

import math

import pytest

from repro.analog import (
    AnalogError,
    Circuit,
    Nmos,
    analyze_common_source,
    build_common_source,
    size_common_source,
)


class TestDcOperatingPoint:
    def test_voltage_divider(self):
        circuit = Circuit("divider")
        circuit.vsource("vin", "top", 10.0)
        circuit.resistor("r1", "top", "mid", 6_000.0)
        circuit.resistor("r2", "mid", "0", 4_000.0)
        op = circuit.dc_operating_point()
        assert op.converged
        assert op.v("mid") == pytest.approx(4.0, rel=1e-6)
        assert op.device_currents["r1"] == pytest.approx(1e-3, rel=1e-6)

    def test_current_source_into_resistor(self):
        circuit = Circuit("ir")
        circuit.isource("i1", "0", "n", 2e-3)
        circuit.resistor("r1", "n", "0", 1_000.0)
        op = circuit.dc_operating_point()
        assert op.v("n") == pytest.approx(2.0, rel=1e-6)

    def test_double_driven_node_rejected(self):
        circuit = Circuit("bad")
        circuit.vsource("v1", "n", 1.0)
        circuit.vsource("v2", "n", 2.0)
        with pytest.raises(AnalogError):
            circuit.dc_operating_point()

    def test_kirchhoff_current_law_holds(self):
        circuit = Circuit("star")
        circuit.vsource("v1", "a", 5.0)
        circuit.resistor("r1", "a", "n", 1_000.0)
        circuit.resistor("r2", "n", "0", 2_000.0)
        circuit.resistor("r3", "n", "0", 2_000.0)
        op = circuit.dc_operating_point()
        into = op.device_currents["r1"]
        out = (op.v("n") / 2_000.0) * 2
        assert into == pytest.approx(out, rel=1e-6)


class TestMosModel:
    def test_regions(self):
        m = Nmos("m", "d", "g", "s", w_over_l=10.0, vth=0.5)
        assert m.region(0.3, 1.0) == "cutoff"
        assert m.region(1.0, 0.2) == "triode"
        assert m.region(1.0, 1.0) == "saturation"

    def test_square_law(self):
        m = Nmos("m", "d", "g", "s", w_over_l=10.0, k=200e-6, vth=0.5,
                 lam=0.0)
        ids = m.ids(1.0, 2.0)
        assert ids == pytest.approx(0.5 * 200e-6 * 10 * 0.25, rel=1e-9)

    def test_gm_increases_with_overdrive(self):
        m = Nmos("m", "d", "g", "s", w_over_l=10.0)
        assert m.gm(1.2, 1.0) > m.gm(0.8, 1.0)

    def test_cutoff_draws_nothing(self):
        m = Nmos("m", "d", "g", "s", w_over_l=10.0)
        assert m.ids(0.2, 1.0) == 0.0
        assert m.gm(0.2, 1.0) == 0.0


class TestCommonSource:
    def test_bias_point_saturated(self):
        design = analyze_common_source(
            w_over_l=20.0, load_ohms=10_000.0, vgs=0.7
        )
        assert design.region == "saturation"
        assert 0.0 < design.drain_voltage < 1.8
        assert design.gain > 1.0

    def test_kvl_across_load(self):
        design = analyze_common_source(
            w_over_l=20.0, load_ohms=10_000.0, vgs=0.7
        )
        drop = design.drain_current * design.load_ohms
        assert design.drain_voltage == pytest.approx(1.8 - drop, rel=1e-4)

    def test_more_width_means_more_current(self):
        small = analyze_common_source(10.0, 5_000.0, 0.7)
        big = analyze_common_source(40.0, 5_000.0, 0.7)
        assert big.drain_current > small.drain_current
        assert big.drain_voltage < small.drain_voltage

    def test_sizing_hits_target_gain(self):
        target = 6.0
        design = size_common_source(target_gain=target)
        assert design.region == "saturation"
        assert design.gain == pytest.approx(target, rel=0.05)
        assert design.iterations > 1  # sizing is a search, not a formula

    def test_sizing_validates_input(self):
        with pytest.raises(ValueError):
            size_common_source(target_gain=-1.0)

    def test_circuit_builder(self):
        circuit = build_common_source(20.0, 10_000.0, 0.8)
        assert circuit.nodes() == ["drain", "gate", "vdd"]


class TestTransient:
    def test_rc_charge_curve(self):
        circuit = Circuit("rc")
        circuit.vsource("vin", "in", 1.0)
        circuit.resistor("r", "in", "out", 1_000.0)
        circuit.capacitor("c", "out", "0", 1e-6)
        tau = 1e-3
        waves = circuit.transient(duration_s=5 * tau, step_s=tau / 100.0)
        out = waves["out"]
        assert out[0] == 0.0
        # After one tau: ~63%; after five: ~99%.
        one_tau = out[100]
        assert one_tau == pytest.approx(1 - math.exp(-1), abs=0.02)
        assert out[-1] > 0.99

    def test_initial_condition_discharge(self):
        circuit = Circuit("rc2")
        circuit.resistor("r", "out", "0", 1_000.0)
        circuit.capacitor("c", "out", "0", 1e-6)
        waves = circuit.transient(
            duration_s=3e-3, step_s=1e-5, initial={"out": 2.0}
        )
        out = waves["out"]
        assert out[0] == 2.0
        assert out[-1] < 0.2  # decays toward ground

    def test_transient_rejects_mosfets(self):
        circuit = build_common_source(10.0, 10_000.0, 0.8)
        with pytest.raises(AnalogError):
            circuit.transient(1e-3, 1e-5)

    def test_transient_validates_steps(self):
        circuit = Circuit("x")
        circuit.resistor("r", "a", "0", 1.0)
        with pytest.raises(AnalogError):
            circuit.transient(0.0, 1e-5)
