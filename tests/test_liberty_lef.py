"""Tests for the Liberty and LEF enablement artifacts."""

import pytest

from repro.pdk import get_pdk
from repro.pdk.lef import from_library, read_lef, write_lef, write_library_lef
from repro.pdk.liberty import parse_liberty, read_liberty, write_liberty


@pytest.fixture(scope="module")
def library():
    return get_pdk("edu130").library


class TestLibertyWriter:
    def test_header_and_cells(self, library):
        text = write_liberty(library)
        assert text.startswith("library (edu130_stdcells)")
        assert "cell (NAND2_X1)" in text
        assert "cell (DFF_X4)" in text
        assert '"generic_cmos"' in text

    def test_functions_emitted(self, library):
        text = write_liberty(library)
        assert 'function : "!(a*b)";' in text  # NAND2
        assert 'function : "!((a*b)+c)";' in text  # AOI21

    def test_sequential_cells_have_ff_group(self, library):
        text = write_liberty(library)
        assert 'ff ("IQ")' in text
        assert 'related_pin : "clk";' in text


class TestLibertyRoundTrip:
    def test_parse_structure(self, library):
        root = parse_liberty(write_liberty(library))
        assert root["args"] == ["edu130_stdcells"]
        cells = [g for g in root["groups"] if g["name"] == "cell"]
        assert len(cells) == len(library.cells)

    def test_full_roundtrip(self, library):
        text = write_liberty(library)
        recovered = read_liberty(text, library.node)
        assert set(recovered.cells) == set(library.cells)
        for name, original in library.cells.items():
            loaded = recovered.cells[name]
            assert loaded.kind == original.kind
            assert loaded.drive == original.drive
            assert loaded.area_um2 == pytest.approx(original.area_um2)
            assert loaded.input_cap_ff == pytest.approx(original.input_cap_ff)
            assert loaded.intrinsic_ps == pytest.approx(original.intrinsic_ps)
            assert loaded.resistance_kohm == pytest.approx(
                original.resistance_kohm
            )
            assert loaded.leakage_nw == pytest.approx(original.leakage_nw)
            assert loaded.is_sequential == original.is_sequential

    def test_recovered_library_synthesizes(self, library):
        from repro.hdl import ModuleBuilder
        from repro.synth import check_equivalence, synthesize

        recovered = read_liberty(write_liberty(library), library.node)
        b = ModuleBuilder("m")
        a = b.input("a", 4)
        c = b.input("c", 4)
        b.output("y", (a + c) ^ (a & c))
        module = b.build()
        result = synthesize(module, recovered)
        assert check_equivalence(module, result.mapped, cycles=30).passed

    def test_bad_file_rejected(self, library):
        with pytest.raises(ValueError):
            parse_liberty("module counter; endmodule")


class TestLef:
    def test_macros_match_library(self, library):
        lef = from_library(library)
        assert len(lef.macros) == len(library.cells)
        assert lef.site_height == pytest.approx(library.node.row_height_um)

    def test_macro_geometry(self, library):
        lef = from_library(library)
        nand = lef.macro("NAND2_X1")
        cell = library.get("NAND2_X1")
        assert nand.width == pytest.approx(
            cell.area_um2 / library.node.row_height_um, rel=1e-3
        )
        pin_names = {p.name for p in nand.pins}
        assert pin_names == {"a", "b", "y"}
        directions = {p.name: p.direction for p in nand.pins}
        assert directions["y"] == "OUTPUT"
        assert directions["a"] == "INPUT"

    def test_dff_has_clk_pin(self, library):
        lef = from_library(library)
        dff = lef.macro("DFF_X1")
        assert any(p.name == "clk" for p in dff.pins)

    def test_pins_inside_macro(self, library):
        lef = from_library(library)
        for macro in lef.macros:
            for pin in macro.pins:
                x0, y0, x1, y1 = pin.rect
                assert 0 <= x0 < x1 <= macro.width + 1e-6
                assert 0 <= y0 < y1 <= macro.height + 1e-6

    def test_roundtrip(self, library):
        original = from_library(library)
        parsed = read_lef(write_lef(original))
        assert parsed.site_name == original.site_name
        assert parsed.site_width == pytest.approx(original.site_width)
        assert len(parsed.macros) == len(original.macros)
        for a, b in zip(original.macros, parsed.macros):
            assert a.name == b.name
            assert b.width == pytest.approx(a.width)
            assert b.height == pytest.approx(a.height)
            assert [(p.name, p.direction) for p in a.pins] == [
                (p.name, p.direction) for p in b.pins
            ]
            for pa, pb in zip(a.pins, b.pins):
                assert pb.rect == pytest.approx(pa.rect)

    def test_convenience_writer(self, library):
        text = write_library_lef(library)
        assert "MACRO INV_X1" in text
        assert text.strip().endswith("END LIBRARY")
