"""Tests for licensing gates, tiers, cloud, shuttles, enablement, hub."""

import pytest

from repro.core import (
    AccessTier,
    CloudPlatform,
    EnablementHub,
    FlowStep,
    HubError,
    ResidencyStatus,
    ShuttleProgram,
    ShuttleProject,
    User,
    access_friction,
    annual_effort_hours,
    availability_vs_enablement,
    backend_coverage,
    effort_breakdown,
    estimate_job_minutes,
    evaluate_access,
    get_template,
    policy_for,
    recommend_tier,
    tier_allows,
)
from repro.hdl import ModuleBuilder, mux
from repro.pdk import get_pdk


def fresh_student(**kwargs) -> User:
    defaults = dict(name="alice", institution="tu-kaiserslautern")
    defaults.update(kwargs)
    return User(**defaults)


class TestLicensing:
    def test_open_pdk_has_no_friction(self):
        user = fresh_student()
        for name in ("edu130", "edu180"):
            assert evaluate_access(user, get_pdk(name)).granted
            assert access_friction(user, get_pdk(name)) == 0

    def test_commercial_pdk_blocks_fresh_student(self):
        decision = evaluate_access(fresh_student(), get_pdk("edu045"))
        assert not decision.granted
        assert len(decision.blockers) >= 3

    def test_export_control(self):
        user = fresh_student(
            residency=ResidencyStatus.RESTRICTED,
            signed_ndas={"edu045"},
            completed_tapeouts=5,
            has_secured_funding=True,
            has_fixed_project_description=True,
            has_isolated_it=True,
        )
        decision = evaluate_access(user, get_pdk("edu045"))
        assert not decision.granted
        assert any("export control" in blocker for blocker in decision.blockers)

    def test_fully_qualified_group_gets_access(self):
        user = fresh_student(
            signed_ndas={"edu045"},
            completed_tapeouts=3,
            has_secured_funding=True,
            has_fixed_project_description=True,
            has_isolated_it=True,
        )
        assert evaluate_access(user, get_pdk("edu045")).granted


class TestTiers:
    def test_beginner_restricted_to_oldest_node(self):
        assert tier_allows(AccessTier.BEGINNER, "edu180")
        assert not tier_allows(AccessTier.BEGINNER, "edu130")
        assert not tier_allows(AccessTier.BEGINNER, "edu180", "commercial")

    def test_advanced_gets_everything(self):
        for pdk in ("edu180", "edu130", "edu045"):
            assert tier_allows(AccessTier.ADVANCED, pdk, "commercial")

    def test_recommendation(self):
        assert recommend_tier(0.5, False) is AccessTier.BEGINNER
        assert recommend_tier(2.5, False) is AccessTier.INTERMEDIATE
        assert recommend_tier(1.0, True) is AccessTier.ADVANCED

    def test_policies_have_pathways(self):
        for tier in AccessTier:
            assert policy_for(tier).recommended_pathway


class TestCloud:
    def test_single_job_no_wait(self):
        cloud = CloudPlatform(servers=2)
        cloud.submit("alice", duration_min=30.0, submit_min=0.0)
        stats = cloud.run()
        assert stats.jobs == 1
        assert stats.mean_wait_min == 0.0

    def test_contention_creates_queue(self):
        cloud = CloudPlatform(servers=1)
        for i in range(5):
            cloud.submit(f"user{i}", duration_min=60.0, submit_min=0.0)
        stats = cloud.run()
        assert stats.mean_wait_min > 0
        assert stats.makespan_min == pytest.approx(300.0)

    def test_more_servers_cut_waits(self):
        def waits(servers):
            cloud = CloudPlatform(servers=servers)
            for i in range(16):
                cloud.submit(f"u{i}", duration_min=30.0, submit_min=float(i))
            return cloud.run().mean_wait_min

        assert waits(8) <= waits(2) <= waits(1)

    def test_priority_order(self):
        cloud = CloudPlatform(servers=1)
        low = cloud.submit("low", duration_min=10.0, submit_min=0.0, priority=5)
        high = cloud.submit("high", duration_min=10.0, submit_min=0.0, priority=0)
        cloud.run()
        assert high.start_min <= low.start_min

    @pytest.mark.parametrize(
        "jobs,expected_wait",
        [
            # One server, unit jobs submitted together: sorted waits are
            # 0, 1, ..., n-1, so nearest-rank p95 (the ceil(0.95 n)-th
            # smallest) is directly readable.  n=20 exposed the old
            # off-by-one: int(0.95 * 20) == 19 indexed one rank too high.
            (1, 0.0),
            (19, 18.0),  # ceil(18.05) = 19th value
            (20, 18.0),  # ceil(19.0) = 19th value, NOT the 20th
            (100, 94.0),  # ceil(95.0) = 95th value
        ],
    )
    def test_p95_wait_nearest_rank(self, jobs, expected_wait):
        cloud = CloudPlatform(servers=1)
        for i in range(jobs):
            cloud.submit(f"u{i}", duration_min=1.0, submit_min=0.0)
        stats = cloud.run()
        assert stats.p95_wait_min == pytest.approx(expected_wait)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CloudPlatform(servers=0)
        with pytest.raises(ValueError):
            CloudPlatform().submit("x", duration_min=0.0, submit_min=0.0)

    def test_job_estimate_grows_with_size(self):
        assert estimate_job_minutes(10_000) > estimate_job_minutes(100)


class TestShuttle:
    @pytest.fixture()
    def program(self):
        return ShuttleProgram(get_pdk("edu130"), runs_per_year=4,
                              capacity_mm2=10.0)

    def test_booking_earliest_run(self, program):
        quote = program.submit(ShuttleProject("p1", "alice", 2.0))
        assert quote.run_index == 0
        assert quote.launch_day == 91

    def test_turnaround_exceeds_course(self, program):
        # Section III-C: chips come back after a typical course ends.
        quote = program.submit(ShuttleProject("p1", "alice", 2.0))
        course_days = 90
        assert not program.meets_deadline(quote, course_days)

    def test_capacity_pushes_to_next_run(self, program):
        program.submit(ShuttleProject("big", "bob", 9.5))
        quote = program.submit(ShuttleProject("p2", "alice", 2.0))
        assert quote.run_index == 1

    def test_calendar_extends(self, program):
        for i in range(12):
            program.submit(ShuttleProject(f"p{i}", "x", 9.0))
        assert len(program.runs) >= 12

    def test_sharing_factor_large(self, program):
        # A shared seat is orders of magnitude cheaper than a mask set.
        assert program.sharing_factor(1.0) > 50

    def test_sponsorship_fund(self):
        # Fund covers exactly one 1 mm2 seat at 1100 EUR/mm2.
        program = ShuttleProgram(get_pdk("edu130"), sponsorship_fund_eur=1_500.0)
        quote = program.submit(
            ShuttleProject("student", "alice", 1.0, sponsored=True)
        )
        assert quote.sponsored
        assert quote.seat_cost_eur == 0.0
        # Fund exhausted: next sponsored seat pays.
        quote2 = program.submit(
            ShuttleProject("student2", "bob", 1.0, sponsored=True)
        )
        assert not quote2.sponsored
        assert quote2.seat_cost_eur > 0

    def test_invalid_project(self):
        with pytest.raises(ValueError):
            ShuttleProject("bad", "x", 0.0)


class TestEnablementModel:
    def test_templates_and_hub_reduce_effort(self):
        manual = annual_effort_hours("manual")
        templates = annual_effort_hours("templates")
        hub = annual_effort_hours("hub")
        assert hub < templates < manual

    def test_enablement_dominates_availability(self):
        split = availability_vs_enablement()
        assert split["enablement_share"] > 0.7

    def test_breakdown_sums_to_total(self):
        for strategy in ("manual", "templates", "hub"):
            breakdown = effort_breakdown(strategy)
            assert sum(breakdown.values()) == pytest.approx(
                annual_effort_hours(strategy), abs=1.0
            )

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            annual_effort_hours("magic")


class TestTemplates:
    def test_builtin_templates_valid(self):
        for name in ("digital_asic", "fpga_prototyping", "beginner_tinytapeout"):
            template = get_template(name)
            assert template.step_names()

    def test_asic_template_covers_backend(self):
        assert backend_coverage(get_template("digital_asic")) == 1.0

    def test_fpga_template_partial_backend(self):
        coverage = backend_coverage(get_template("fpga_prototyping"))
        assert 0.2 < coverage < 0.8

    def test_order_violation_rejected(self):
        from repro.core.templates import FlowTemplate, StepSpec

        bad = FlowTemplate(
            "bad", "wrong order",
            (StepSpec(FlowStep.ROUTING), StepSpec(FlowStep.PLACEMENT)),
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_unknown_template(self):
        with pytest.raises(KeyError):
            get_template("analog_flow")


class TestHub:
    def build_tiny(self):
        b = ModuleBuilder("tiny")
        en = b.input("en", 1)
        count = b.register("count", 4)
        count.next = mux(en, count + 1, count)
        b.output("q", count)
        return b.build()

    def test_enroll_and_run(self):
        hub = EnablementHub()
        hub.enroll(fresh_student(), AccessTier.INTERMEDIATE)
        record = hub.run_design("alice", self.build_tiny(), "edu130")
        assert record.result.ok
        assert hub.jobs

    def test_unenrolled_rejected(self):
        hub = EnablementHub()
        with pytest.raises(HubError):
            hub.run_design("mallory", self.build_tiny(), "edu130")

    def test_tier_blocks_commercial_node(self):
        hub = EnablementHub()
        hub.enroll(fresh_student(), AccessTier.BEGINNER)
        with pytest.raises(HubError):
            hub.run_design("alice", self.build_tiny(), "edu045")

    def test_available_pdks_respect_gates(self):
        hub = EnablementHub()
        hub.enroll(fresh_student(), AccessTier.ADVANCED)
        available = hub.available_pdks("alice")
        assert "edu130" in available
        assert "edu045" not in available  # no NDA yet

    def test_access_decision_trail(self):
        hub = EnablementHub()
        hub.enroll(fresh_student(), AccessTier.BEGINNER)
        decision = hub.request_access("alice", "edu045")
        assert not decision.granted
        assert "tier" in decision.blockers[0]

    def test_shuttle_booking_through_hub(self):
        hub = EnablementHub()
        hub.enroll(fresh_student(), AccessTier.INTERMEDIATE)
        quote = hub.book_shuttle_seat("alice", "edu130", area_mm2=0.5)
        assert quote.launch_day > 0

    def test_shuttle_area_capped_by_tier(self):
        hub = EnablementHub()
        hub.enroll(fresh_student(), AccessTier.BEGINNER)
        with pytest.raises(HubError):
            hub.book_shuttle_seat("alice", "edu180", area_mm2=5.0)

    def test_ip_is_ungated(self):
        hub = EnablementHub()
        assert "fifo" in hub.ip_catalogue()
        ip = hub.fetch_ip("counter", width=4)
        assert ip.verify(50).passed


class TestTapeoutRequest:
    def build_counter(self, width=6):
        b = ModuleBuilder("tapeout_me")
        en = b.input("en", 1)
        count = b.register("count", width)
        count.next = mux(en, count + 1, count)
        b.output("q", count)
        return b.build()

    def test_signoff_gated_booking(self):
        hub = EnablementHub()
        hub.enroll(fresh_student(), AccessTier.INTERMEDIATE)
        record = hub.run_design("alice", self.build_counter(), "edu130",
                                clock_period_ps=5_000.0)
        quote = hub.request_tapeout("alice", record)
        assert quote.launch_day > 0
        assert quote.seat_cost_eur >= 0

    def test_failing_signoff_blocks_booking(self):
        hub = EnablementHub()
        hub.enroll(fresh_student(), AccessTier.INTERMEDIATE)
        record = hub.run_design("alice", self.build_counter(), "edu130",
                                clock_period_ps=5_000.0)

        class Fake:
            passed = False
            mismatches = []

        original = record.result.synthesis.equivalence
        record.result.synthesis.equivalence = Fake()
        try:
            with pytest.raises(HubError, match="signoff"):
                hub.request_tapeout("alice", record)
        finally:
            record.result.synthesis.equivalence = original

    def test_jobless_record_rejected(self):
        from repro.core.hub import HubJobRecord

        hub = EnablementHub()
        hub.enroll(fresh_student(), AccessTier.INTERMEDIATE)
        empty = HubJobRecord(user="alice", design="x", pdk="edu130",
                             preset="open")
        with pytest.raises(HubError, match="no flow result"):
            hub.request_tapeout("alice", empty)
