"""Cross-module integration tests: full platform scenarios end to end."""

import pytest

from repro.core import (
    AccessTier,
    CloudPlatform,
    EnablementHub,
    FlowOptions,
    OPEN,
    ResidencyStatus,
    User,
    estimate_job_minutes,
    run_flow,
)
from repro.fpga import get_device, lut_map, place_on_array
from repro.hdl import ModuleBuilder, elaborate, mux
from repro.hls import compile_function
from repro.ip import assemble, generate, generate_cpu
from repro.layout import read_gds
from repro.pdk import get_pdk
from repro.sta import TimingAnalyzer
from repro.synth import check_equivalence, lower, optimize, synthesize


class TestDeepHierarchy:
    def build_three_levels(self):
        leaf_b = ModuleBuilder("leaf")
        d = leaf_b.input("d", 4)
        q = leaf_b.register("q", 4)
        q.next = d
        leaf_b.output("out", q)
        leaf = leaf_b.build()

        mid_b = ModuleBuilder("mid")
        d = mid_b.input("d", 4)
        s0 = mid_b.instance("s0", leaf, d=d)
        s1 = mid_b.instance("s1", leaf, d=s0["out"])
        mid_b.output("out", s1["out"])
        mid = mid_b.build()

        top_b = ModuleBuilder("top3")
        d = top_b.input("d", 4)
        m0 = top_b.instance("m0", mid, d=d)
        m1 = top_b.instance("m1", mid, d=m0["out"])
        top_b.output("q", m1["out"])
        return top_b.build()

    def test_three_level_elaboration(self):
        flat = elaborate(self.build_three_levels())
        assert len(flat.registers) == 4
        names = {sig.name for sig in flat.signals}
        assert "m0.s1.q" in names

    def test_three_level_flow(self):
        result = run_flow(
            self.build_three_levels(), get_pdk("edu130"),
            FlowOptions(preset=OPEN),
        )
        assert result.ok
        assert len(result.synthesis.mapped.seq_cells) == 16


class TestHlsToSilicon:
    def test_hls_module_through_full_flow(self):
        def mac(a, b, c):
            return a * b + c

        hls = compile_function(mac, width=8)
        result = run_flow(hls.module, get_pdk("edu130"),
                          FlowOptions(preset=OPEN,
                                      clock_period_ps=4_000.0))
        assert result.ok
        assert result.synthesis.equivalence.passed

    def test_same_netlist_feeds_asic_and_fpga(self):
        def poly(x, c0, c1):
            return c1 * x + c0

        hls = compile_function(poly, width=8)
        netlist, _ = optimize(lower(hls.module))
        mapping = lut_map(netlist, get_device("edu-ecp5"))
        placement = place_on_array(netlist, mapping)
        assert mapping.fits
        assert placement.channel_width >= 0

        synth = synthesize(hls.module, get_pdk("edu130").library)
        assert check_equivalence(hls.module, synth.mapped, cycles=20).passed


class TestCpuSocStory:
    def test_cpu_program_to_gds(self):
        program = assemble("LDI 5\nADD 5\nOUT\nHALT")
        module = generate_cpu(program)
        result = run_flow(module, get_pdk("edu180"),
                          FlowOptions(preset=OPEN,
                                      clock_period_ps=10_000.0))
        assert result.ok
        library = read_gds(result.gds_bytes)
        top = library.struct("tinycpu")
        assert len(top.srefs) == len(result.synthesis.mapped.cells)


class TestHubSemester:
    """A full semester through the hub: enrollment to shuttle."""

    def test_semester_story(self):
        hub = EnablementHub(cloud=CloudPlatform(servers=2))
        students = [
            User(name=f"student{i}", institution="uni") for i in range(3)
        ]
        for student in students:
            hub.enroll(student, AccessTier.INTERMEDIATE)

        minute = 0.0
        for i, student in enumerate(students):
            ip = hub.fetch_ip("counter", width=4 + i)
            assert ip.verify(100).passed
            record = hub.run_design(
                student.name, ip.module, "edu130",
                clock_period_ps=10_000.0, submit_minute=minute,
            )
            assert record.result.ok
            minute += 5.0

        stats = hub.cloud.run()
        assert stats.jobs == 3
        assert stats.utilization > 0

        quote = hub.book_shuttle_seat("student0", "edu130", area_mm2=0.5)
        assert quote.chips_back_day > 100  # next term, as the paper says

    def test_restricted_student_can_still_use_open_nodes(self):
        hub = EnablementHub()
        visitor = User(
            name="visitor", institution="uni",
            residency=ResidencyStatus.RESTRICTED,
        )
        hub.enroll(visitor, AccessTier.ADVANCED)
        available = hub.available_pdks("visitor")
        assert "edu130" in available and "edu180" in available
        assert "edu045" not in available  # export control bites

        b = ModuleBuilder("ok_design")
        a = b.input("a", 4)
        b.output("y", ~a)
        record = hub.run_design("visitor", b.build(), "edu130")
        assert record.result.ok


class TestTimingCorners:
    def test_hold_violation_from_large_negative_skew(self):
        b = ModuleBuilder("pipe")
        d = b.input("d", 4)
        s1 = b.register("s1", 4)
        s1.next = d
        s2 = b.register("s2", 4)
        s2.next = s1
        b.output("q", s2)
        mapped = synthesize(b.build(), get_pdk("edu130").library).mapped

        # Give capture flops a huge early/late skew imbalance: the s2
        # flops capture far later than the s1 flops launch.
        skew = {}
        for inst in mapped.seq_cells:
            skew[inst.name] = 0.0
        capture_like = [c.name for c in mapped.seq_cells][: len(skew) // 2]
        for name in capture_like:
            skew[name] = 500.0
        report = TimingAnalyzer(
            mapped, get_pdk("edu130").node, skew_ps=skew
        ).analyze(10_000.0)
        assert report.worst_hold_slack_ps < 0  # skew-induced hold risk

    def test_router_reports_failures_on_hopeless_grid(self):
        from repro.pnr import GridRouter, make_floorplan, place

        pdk = get_pdk("edu130")
        b = ModuleBuilder("wide")
        a = b.input("a", 16)
        c = b.input("c", 16)
        b.output("y", a + c)
        mapped = synthesize(b.build(), pdk.library).mapped
        fp = make_floorplan(mapped, pdk.node, utilization=0.6)
        placement = place(mapped, fp)
        # A 2x2 grid cannot host this many nets without huge overflow,
        # but the router must still terminate and report.
        router = GridRouter(mapped, placement, pdk.node,
                            pitch_um=fp.die_width, capacity=1)
        result = router.route(max_iterations=2)
        assert result.overflow >= 0
        assert result.iterations <= 2


class TestCloudDimensioning:
    def test_semester_peak_load(self):
        # 40 students submit their project in the same afternoon.
        for servers, expect_fast in ((1, False), (16, True)):
            cloud = CloudPlatform(servers=servers)
            for i in range(40):
                cloud.submit(
                    f"s{i}", estimate_job_minutes(500), submit_min=i * 2.0
                )
            stats = cloud.run()
            if expect_fast:
                assert stats.mean_wait_min < 10.0
            else:
                assert stats.mean_wait_min > 60.0
