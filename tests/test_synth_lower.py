"""Tests for bit-blasting: every operator is checked against RTL semantics."""

import pytest

from repro.hdl import ModuleBuilder, cat, mux
from repro.synth import GateSimulator, check_equivalence, lower


def lower_and_sim(module):
    return GateSimulator(lower(module))


def binary_module(fn, wa=6, wb=6, name="m"):
    b = ModuleBuilder(name)
    a = b.input("a", wa)
    c = b.input("c", wb)
    b.output("y", fn(a, c))
    return b.build()


class TestCombLowering:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda a, c: a + c,
            lambda a, c: a - c,
            lambda a, c: a * c,
            lambda a, c: a & c,
            lambda a, c: a | c,
            lambda a, c: a ^ c,
            lambda a, c: a.eq(c),
            lambda a, c: a.ne(c),
            lambda a, c: a.lt(c),
            lambda a, c: a.le(c),
            lambda a, c: a.gt(c),
            lambda a, c: a.ge(c),
            lambda a, c: a << c[2:0],
            lambda a, c: a >> c[2:0],
            lambda a, c: mux(a[0], a + c, a - c),
            lambda a, c: cat(a[3:0], c[5:2]),
            lambda a, c: ~a | -c,
            lambda a, c: a.reduce_and() ^ c.reduce_or() ^ a.reduce_xor(),
        ],
        ids=[
            "add", "sub", "mul", "and", "or", "xor", "eq", "ne", "lt", "le",
            "gt", "ge", "shl_var", "shr_var", "mux", "cat_slice", "not_neg",
            "reductions",
        ],
    )
    def test_operator_equivalence(self, fn):
        module = binary_module(fn)
        result = check_equivalence(module, lower(module), cycles=50)
        assert result.passed, result.mismatches[:3]

    def test_mixed_width_operands(self):
        b = ModuleBuilder("m")
        a = b.input("a", 9)
        c = b.input("c", 3)
        b.output("y", (a + c) ^ (a & c))
        module = b.build()
        assert check_equivalence(module, lower(module), cycles=50).passed

    def test_const_shift(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        b.output("y", (a << 3) | (a >> 2))
        module = b.build()
        assert check_equivalence(module, lower(module), cycles=50).passed

    def test_overshift_constant(self):
        b = ModuleBuilder("m")
        a = b.input("a", 4)
        b.output("y", a << 9)
        module = b.build()
        sim = lower_and_sim(module)
        sim.set("a", 0xF)
        assert sim.get("y") == 0

    def test_mul_full_width(self):
        b = ModuleBuilder("m")
        a = b.input("a", 4)
        c = b.input("c", 4)
        b.output("y", a * c)
        sim = lower_and_sim(b.build())
        sim.set("a", 15)
        sim.set("c", 15)
        assert sim.get("y") == 225


class TestSequentialLowering:
    def test_counter_equivalence(self):
        b = ModuleBuilder("counter")
        en = b.input("en", 1)
        count = b.register("count", 8)
        count.next = mux(en, count + 1, count)
        b.output("q", count)
        module = b.build()
        assert check_equivalence(module, lower(module), cycles=100).passed

    def test_reset_values_carried(self):
        b = ModuleBuilder("m")
        r = b.register("r", 8, reset=0xA5)
        r.next = r
        b.output("q", r)
        sim = lower_and_sim(b.build())
        assert sim.get("q") == 0xA5

    def test_lfsr_equivalence(self):
        b = ModuleBuilder("lfsr")
        state = b.register("state", 8, reset=1)
        feedback = state[7] ^ state[5] ^ state[4] ^ state[3]
        state.next = cat(state[6:0], feedback)
        b.output("q", state)
        module = b.build()
        assert check_equivalence(module, lower(module), cycles=300).passed

    def test_hierarchical_design_lowered(self):
        leaf_b = ModuleBuilder("leaf")
        d = leaf_b.input("d", 4)
        q = leaf_b.register("q", 4)
        q.next = d
        leaf_b.output("out", q)
        leaf = leaf_b.build()

        b = ModuleBuilder("top")
        d = b.input("d", 4)
        s0 = b.instance("s0", leaf, d=d)
        s1 = b.instance("s1", leaf, d=s0["out"])
        b.output("q", s1["out"])
        module = b.build()
        netlist = lower(module)
        assert len(netlist.dffs) == 8
        assert check_equivalence(module, netlist, cycles=50).passed


class TestNetlistStructure:
    def test_stats_and_depth(self):
        module = binary_module(lambda a, c: a + c)
        netlist = lower(module)
        stats = netlist.stats()
        assert stats["gates"] > 10
        assert stats["depth"] >= 6  # ripple chain through 6 bits

    def test_fanout_counts_outputs(self):
        b = ModuleBuilder("m")
        a = b.input("a", 1)
        b.output("y", ~a)
        b.output("z", ~a)
        netlist = lower(b.build())
        fanout = netlist.fanout()
        not_gate_out = netlist.outputs["y"][0]
        assert fanout[not_gate_out] >= 1

    def test_topo_rejects_loop(self):
        from repro.synth.netlist import Gate, GateNetlist

        nl = GateNetlist("loop")
        n1, n2 = nl.new_net(), nl.new_net()
        nl.gates.append(Gate("NOT", (n1,), n2))
        nl.gates.append(Gate("NOT", (n2,), n1))
        with pytest.raises(ValueError, match="loop"):
            nl.topo_gates()

    def test_gate_arity_checked(self):
        from repro.synth.netlist import Gate

        with pytest.raises(ValueError):
            Gate("AND", (1,), 2)
        with pytest.raises(ValueError):
            Gate("NOT", (1, 2), 3)
        with pytest.raises(ValueError):
            Gate("NAND", (1, 2), 3)
