"""Tests for the repro.lint static-analysis engine.

Covers the rule framework (findings, waivers, JSON round trip), every
RTL and netlist rule on minimal triggering designs, clean-design
behaviour, the cold-vs-warm cached-index equivalence contract, and the
flow integration (spans, FlowResult.lint, strict mode).
"""

import json

import pytest

from repro.core import FlowOptions, run_flow
from repro.core.flow import FlowError
from repro.hdl import ModuleBuilder, mux
from repro.hdl.ir import BinOp, Const, Module, Mux, Ref, Slice
from repro.lint import (
    Finding,
    LintError,
    LintOptions,
    LintReport,
    Waiver,
    lint_design,
    lint_gate_netlist,
    lint_mapped,
    lint_module,
    load_waiver_file,
    make_defective_module,
    make_defective_netlist,
    rules_for,
)
from repro.obs import Tracer
from repro.pdk import get_pdk
from repro.synth import GateNetlist, MappedNetlist, synthesize


def rules_of(report: LintReport) -> set[str]:
    return report.rule_ids()


# -- framework --------------------------------------------------------------


class TestFinding:
    def test_bad_severity_rejected(self):
        with pytest.raises(LintError):
            Finding("x", "fatal", "t", "loc", "msg")

    def test_dict_round_trip(self):
        finding = Finding("rtl.undriven", "error", "top", "q",
                          "no driver", "assign it")
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_missing_key_rejected(self):
        with pytest.raises(LintError):
            Finding.from_dict({"rule": "x"})


class TestWaiver:
    def test_parse_rule_only(self):
        waiver = Waiver.parse("rtl.unused-input")
        assert waiver.rule == "rtl.unused-input"
        assert waiver.location == "*"

    def test_parse_with_location_and_reason(self):
        waiver = Waiver.parse("net.high-fanout@u3_DFF # clock fanout is fine")
        assert waiver.location == "u3_DFF"
        assert waiver.reason == "clock fanout is fine"

    def test_parse_empty_rejected(self):
        with pytest.raises(LintError):
            Waiver.parse("   ")

    def test_glob_matching(self):
        finding = Finding("rtl.unused-wire", "warning", "top", "tmp", "m")
        assert Waiver("rtl.*").matches(finding)
        assert Waiver("rtl.unused-wire", "tmp").matches(finding)
        assert not Waiver("rtl.unused-wire", "other").matches(finding)
        assert not Waiver("net.*").matches(finding)

    def test_waiver_file(self, tmp_path):
        path = tmp_path / "waivers.txt"
        path.write_text(
            "# project waivers\n"
            "\n"
            "rtl.unused-input@spare_* # bond-out spares\n"
            "net.high-fanout\n"
        )
        waivers = load_waiver_file(str(path))
        assert len(waivers) == 2
        assert waivers[0].location == "spare_*"
        assert waivers[0].reason == "bond-out spares"


class TestReport:
    def make_report(self):
        return LintReport(
            findings=[
                Finding("rtl.undriven", "error", "top", "a", "m"),
                Finding("rtl.unused-wire", "warning", "top", "b", "m"),
                Finding("rtl.const-expr", "info", "top", "c", "m"),
            ],
            waivers=(Waiver("rtl.undriven", reason="known"),),
        )

    def test_partitions_respect_waivers(self):
        report = self.make_report()
        assert [f.rule for f in report.waived] == ["rtl.undriven"]
        assert not report.errors
        assert report.clean
        assert len(report.warnings) == 1

    def test_counts_and_summary(self):
        report = self.make_report()
        assert report.counts() == {"error": 0, "warning": 1, "info": 1}
        assert "1 waived" in report.summary()
        assert "clean" in report.summary()

    def test_promote_warnings(self):
        strict = self.make_report().promote_warnings()
        assert [f.rule for f in strict.errors] == ["rtl.unused-wire"]
        assert not strict.clean
        assert len(strict.infos) == 1  # info is untouched

    def test_merge_sorts_and_unions_waivers(self):
        left = self.make_report()
        right = LintReport(
            findings=[Finding("net.dangling", "error", "n", "g0", "m")],
            waivers=(Waiver("rtl.undriven", reason="known"),
                     Waiver("net.*", reason="later")),
        )
        merged = left.merge(right)
        assert len(merged.findings) == 4
        assert merged.findings[0].severity == "error"
        assert len(merged.waivers) == 2

    def test_json_round_trip(self):
        report = self.make_report()
        clone = LintReport.from_json(report.to_json())
        assert clone.findings == report.findings
        assert clone.waivers == report.waivers
        assert clone.clean == report.clean
        payload = json.loads(report.to_json())
        assert payload["counts"] == {"error": 0, "warning": 1, "info": 1}
        assert [w["rule"] for w in payload["waivers"]] == ["rtl.undriven"]

    def test_malformed_json_rejected(self):
        with pytest.raises(LintError):
            LintReport.from_json("not json")
        with pytest.raises(LintError):
            LintReport.from_json("[1, 2]")

    def test_render_mentions_waivers_and_hints(self):
        text = self.make_report().render()
        assert "waived" in text
        assert "known" in text


# -- RTL rules --------------------------------------------------------------


class TestRtlRules:
    def test_undriven_and_multi_driven(self):
        m = Module("t")
        m.add_output("q", 4)
        a = m.add_input("a", 4)
        reg = m.add_register("r", 4)
        m.assign(reg.signal, Ref(a))
        report = lint_module(m)
        assert {"rtl.undriven", "rtl.multi-driven"} <= rules_of(report)

    def test_input_driven(self):
        m = Module("t")
        a = m.add_input("a", 1)
        b = m.add_input("b", 1)
        m.assigns[a] = Ref(b)  # the API refuses; poke the dict
        m.add_output("y", 1)
        m.assign(m.outputs[0], Ref(a))
        assert "rtl.input-driven" in rules_of(lint_module(m))

    def test_comb_loop_two_wires(self):
        m = Module("t")
        x = m.add_wire("x", 1)
        y = m.add_wire("y", 1)
        m.assign(x, Ref(y))
        m.assign(y, Ref(x))
        findings = [f for f in lint_module(m).findings
                    if f.rule == "rtl.comb-loop"]
        assert len(findings) == 1
        assert "x" in findings[0].message and "y" in findings[0].message

    def test_self_assign_is_not_reported_as_loop(self):
        m = Module("t")
        x = m.add_wire("x", 1)
        m.assign(x, Ref(x))
        rules = rules_of(lint_module(m))
        assert "rtl.self-assign" in rules
        assert "rtl.comb-loop" not in rules

    def test_self_loop_through_logic_is_a_loop(self):
        m = Module("t")
        x = m.add_wire("x", 4)
        m.assign(x, BinOp("add", Ref(x), Const(1, 4)))
        assert "rtl.comb-loop" in rules_of(lint_module(m))

    def test_frozen_register(self):
        m = Module("t")
        m.add_register("held", 8)  # default next is itself
        rules = rules_of(lint_module(m))
        assert "rtl.self-assign" in rules
        assert "rtl.unread-register" in rules

    def test_register_read_by_output_is_not_unread(self):
        b = ModuleBuilder("t")
        en = b.input("en", 1)
        count = b.register("count", 4)
        count.next = mux(en, count + 1, count)
        b.output("q", count)
        rules = rules_of(lint_module(b.build()))
        assert "rtl.unread-register" not in rules
        assert "rtl.self-assign" not in rules

    def test_unused_input_and_wire(self):
        m = Module("t")
        m.add_input("spare", 2)
        a = m.add_input("a", 2)
        tmp = m.add_wire("tmp", 2)
        m.assign(tmp, Ref(a))
        y = m.add_output("y", 2)
        m.assign(y, Ref(a))
        report = lint_module(m)
        locations = {(f.rule, f.location) for f in report.findings}
        assert ("rtl.unused-input", "spare") in locations
        assert ("rtl.unused-wire", "tmp") in locations
        assert ("rtl.unused-input", "a") not in locations

    def test_width_truncation_via_poked_assign(self):
        m = Module("t")
        a = m.add_input("a", 8)
        y = m.add_output("y", 4)
        m.assigns[y] = Ref(a)  # assign() refuses truncation
        assert "rtl.width-truncation" in rules_of(lint_module(m))

    def test_implicit_extension_is_info(self):
        m = Module("t")
        a = m.add_input("a", 4)
        y = m.add_output("y", 8)
        m.assign(y, Ref(a))
        findings = [f for f in lint_module(m).findings
                    if f.rule == "rtl.implicit-extension"]
        assert findings and findings[0].severity == "info"

    def test_const_expr_and_oversized_const(self):
        m = Module("t")
        y = m.add_output("y", 8)
        m.assign(y, BinOp("or", Const(4, 8), Const(1, 8)))
        big = m.add_output("big", 48)
        m.assign(big, Const(7, 48))
        report = lint_module(m)
        assert "rtl.const-expr" in rules_of(report)
        assert "rtl.oversized-const" in rules_of(report)
        const_finding = [f for f in report.findings
                         if f.rule == "rtl.const-expr"][0]
        assert "5" in const_finding.message  # 4 | 1

    def test_bare_const_assign_is_not_const_expr(self):
        m = Module("t")
        y = m.add_output("y", 4)
        m.assign(y, Const(3, 4))
        assert "rtl.const-expr" not in rules_of(lint_module(m))

    def test_oversized_const_threshold_configurable(self):
        m = Module("t")
        y = m.add_output("y", 8)
        m.assign(y, Const(1, 8))
        assert "rtl.oversized-const" not in rules_of(lint_module(m))
        tight = lint_module(m, options=LintOptions(min_const_waste_bits=4))
        assert "rtl.oversized-const" in rules_of(tight)

    def test_dead_mux_arm_and_same_arms(self):
        m = Module("t")
        a = m.add_input("a", 4)
        y = m.add_output("y", 4)
        m.assign(y, Mux(Const(0, 1), Ref(a), Ref(a)))
        report = lint_module(m)
        assert "rtl.dead-mux-arm" in rules_of(report)
        assert "rtl.mux-same-arms" in rules_of(report)
        dead = [f for f in report.findings if f.rule == "rtl.dead-mux-arm"][0]
        assert "if_true" in dead.message  # sel==0 kills the true arm

    def test_live_mux_not_flagged(self):
        b = ModuleBuilder("t")
        sel = b.input("sel", 1)
        a = b.input("a", 4)
        c = b.input("c", 4)
        b.output("y", mux(sel, a, c))
        rules = rules_of(lint_module(b.build()))
        assert "rtl.dead-mux-arm" not in rules
        assert "rtl.mux-same-arms" not in rules

    def test_unreachable_slice_of_extension(self):
        m = Module("t")
        a = m.add_input("a", 8)
        wide = m.add_wire("wide", 16)
        m.assign(wide, Ref(a))
        y = m.add_output("y", 4)
        m.assign(y, Slice(Ref(wide), 15, 12))
        assert "rtl.unreachable-slice" in rules_of(lint_module(m))

    def test_reachable_slice_not_flagged(self):
        m = Module("t")
        a = m.add_input("a", 8)
        wide = m.add_wire("wide", 16)
        m.assign(wide, Ref(a))
        y = m.add_output("y", 4)
        m.assign(y, Slice(Ref(wide), 7, 4))
        assert "rtl.unreachable-slice" not in rules_of(lint_module(m))

    def test_unreachable_slice_of_const(self):
        m = Module("t")
        y = m.add_output("y", 4)
        m.assign(y, Slice(Const(3, 16), 11, 8))
        assert "rtl.unreachable-slice" in rules_of(lint_module(m))


# -- netlist rules ----------------------------------------------------------


class TestNetlistRules:
    def test_demo_netlist_trips_every_rule(self):
        report = lint_gate_netlist(make_defective_netlist())
        expected = {rule.id for rule in rules_for("netlist")}
        assert rules_of(report) == expected

    def test_clean_netlist_from_synthesis(self):
        b = ModuleBuilder("clean")
        a = b.input("a", 4)
        c = b.input("c", 4)
        b.output("y", a + c)
        synth = synthesize(b.build(), get_pdk("edu130").library)
        report = lint_gate_netlist(synth.netlist)
        assert report.clean
        assert not report.errors

    def test_fanout_threshold_configurable(self):
        n = GateNetlist("fan")
        a = n.add_input("a", 1)
        outs = []
        prev = a[0]
        for _ in range(5):
            prev = n.add_gate("NOT", prev)
            outs.append(n.add_gate("AND", a[0], prev))
        n.set_output("y", outs)
        default = lint_gate_netlist(n)
        assert "net.high-fanout" not in rules_of(default)
        tight = lint_gate_netlist(n, options=LintOptions(max_fanout=4))
        assert "net.high-fanout" in rules_of(tight)

    def test_dff_feeding_dff_reaches_output(self):
        n = GateNetlist("pipe")
        a = n.add_input("a", 1)
        q1 = n.add_dff(a[0])
        q2 = n.add_dff(q1)
        n.set_output("y", [q2])
        assert "net.unreachable-register" not in rules_of(lint_gate_netlist(n))


class TestMappedRules:
    @pytest.fixture(scope="class")
    def library(self):
        return get_pdk("edu130").library

    def build_mapped(self, library):
        mapped = MappedNetlist("m", library)
        a = mapped.new_net()
        b = mapped.new_net()
        mapped.set_port("input", "a", [a])
        mapped.set_port("input", "b", [b])
        nand = library.cells["NAND2_X1"]
        inst = mapped.add_cell(nand, {"a": a, "b": b,
                                      "y": mapped.new_net()})
        mapped.set_port("output", "y", [inst.pins["y"]])
        return mapped

    def test_clean_mapped_is_clean(self, library):
        assert lint_mapped(self.build_mapped(library)).clean

    def test_floating_pin_and_dangling(self, library):
        mapped = self.build_mapped(library)
        inv = library.cells["INV_X1"]
        # Input floats, output goes nowhere.
        mapped.add_cell(inv, {"a": mapped.new_net(), "y": mapped.new_net()})
        report = lint_mapped(mapped)
        assert {"net.floating-input", "net.dangling"} <= rules_of(report)
        assert not report.clean

    def test_duplicate_cell_commutative(self, library):
        mapped = self.build_mapped(library)
        a = mapped.inputs["a"][0]
        b = mapped.inputs["b"][0]
        nand = library.cells["NAND2_X1"]
        extra = mapped.add_cell(nand, {"a": b, "b": a,
                                       "y": mapped.new_net()})
        mapped.set_port("output", "y2", [extra.pins["y"]])
        assert "net.duplicate-gate" in rules_of(lint_mapped(mapped))

    def test_tie_fed_cell_flagged(self, library):
        mapped = self.build_mapped(library)
        tie = library.cells["TIE0_X1"]
        tie_inst = mapped.add_cell(tie, {"y": mapped.new_net()})
        inv = library.cells["INV_X1"]
        fed = mapped.add_cell(inv, {"a": tie_inst.pins["y"],
                                    "y": mapped.new_net()})
        mapped.set_port("output", "z", [fed.pins["y"]])
        assert "net.const-gate" in rules_of(lint_mapped(mapped))

    def test_unreachable_register(self, library):
        mapped = self.build_mapped(library)
        dff = library.cells["DFF_X1"]
        mapped.add_cell(dff, {"d": mapped.inputs["a"][0],
                              "q": mapped.new_net()})
        assert "net.unreachable-register" in rules_of(lint_mapped(mapped))

    def test_pdk_derived_fanout_budget_scales_with_drive(self, library):
        mapped = self.build_mapped(library)
        inv1 = library.cells["INV_X1"]
        inv4 = library.cells["INV_X4"]
        weak_net = mapped.new_net()
        strong_net = mapped.new_net()
        mapped.add_cell(inv1, {"a": mapped.inputs["a"][0], "y": weak_net})
        mapped.add_cell(inv4, {"a": mapped.inputs["b"][0], "y": strong_net})
        sinks = []
        for net in (weak_net, strong_net):
            for _ in range(6):  # ~6 INV loads: over X1 budget, under X4
                sink = mapped.add_cell(inv1, {"a": net,
                                              "y": mapped.new_net()})
                sinks.append(sink.pins["y"])
        mapped.set_port("output", "taps", sinks)
        findings = [f for f in lint_mapped(mapped).findings
                    if f.rule == "net.high-fanout"]
        flagged = {f.location for f in findings}
        assert any("INV" in loc for loc in flagged)
        # The X4 driver has 4x the budget and carries the same load.
        weak_driver = [f for f in findings if "X1" not in f.message][0]
        assert "drive 1" in weak_driver.message


class TestCachedIndexEquivalence:
    """Satellite: lint results are identical with cold vs. warm caches."""

    def test_cold_vs_warm_mapped_indexes(self):
        def build():
            b = ModuleBuilder("alu_ish")
            a = b.input("a", 8)
            c = b.input("c", 8)
            op = b.input("op", 1)
            b.output("y", mux(op, a & c, (a + c).trunc(8)))
            return synthesize(b.build(), get_pdk("edu130").library).mapped

        cold_mapped = build()
        cold = lint_mapped(cold_mapped)

        warm_mapped = build()
        # Pre-walk every memoized index, as placement/STA/power would.
        warm_mapped.net_driver()
        warm_mapped.net_loads()
        warm_mapped.nets()
        warm_mapped.topo_comb()
        version_before = warm_mapped.index_version
        warm = lint_mapped(warm_mapped)

        assert warm_mapped.index_version == version_before  # no rebuild
        assert cold.findings == warm.findings
        assert cold.summary() == warm.summary()

    def test_lint_after_mutation_sees_fresh_indexes(self):
        library = get_pdk("edu130").library
        mapped = MappedNetlist("mut", library)
        a = mapped.new_net()
        mapped.set_port("input", "a", [a])
        inv = library.cells["INV_X1"]
        inst = mapped.add_cell(inv, {"a": a, "y": mapped.new_net()})
        mapped.set_port("output", "y", [inst.pins["y"]])
        assert lint_mapped(mapped).clean
        # Rewire the input pin onto a floating net through the mutation
        # API; the memoized indexes invalidate and lint must see it.
        mapped.rewire(inst, "a", mapped.new_net())
        assert "net.floating-input" in rules_of(lint_mapped(mapped))


# -- demo + clean designs ---------------------------------------------------


class TestAcceptance:
    def test_demo_designs_trip_at_least_eight_rules(self):
        report = lint_design(
            make_defective_module(), netlist=make_defective_netlist()
        )
        rtl_rules = {r for r in report.rule_ids() if r.startswith("rtl.")}
        net_rules = {r for r in report.rule_ids() if r.startswith("net.")}
        assert len(rtl_rules) + len(net_rules) >= 8
        assert rtl_rules and net_rules
        assert not report.clean

    def test_waiving_all_errors_makes_demo_clean(self):
        report = lint_design(
            make_defective_module(),
            netlist=make_defective_netlist(),
            waivers=(Waiver("rtl.*", reason="demo"),
                     Waiver("net.*", reason="demo")),
        )
        assert report.clean
        assert len(report.waived) == len(report.findings)

    def test_catalogue_counter_has_no_errors(self):
        from repro.ip.catalog import generate

        ip = generate("counter")
        synth = synthesize(ip.module, get_pdk("edu130").library)
        report = lint_design(ip.module, mapped=synth.mapped)
        assert report.clean, report.render()


# -- flow integration -------------------------------------------------------

def _flow_module():
    b = ModuleBuilder("lintflow")
    en = b.input("en", 1)
    count = b.register("count", 4)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    return b.build()


class TestFlowIntegration:
    def test_flow_attaches_lint_report_and_spans(self):
        tracer = Tracer()
        result = run_flow(_flow_module(), get_pdk("edu130"), tracer=tracer)
        assert result.lint is not None
        assert result.lint.clean
        names = {span.name for span in result.trace}
        assert "lint.rtl" in names
        assert "lint.mapped" in names
        targets = {f.target for f in result.lint.findings}
        assert targets <= {"lintflow"}

    def test_flow_waivers_reach_the_report(self):
        waiver = Waiver("net.high-fanout", reason="edu PDK budget")
        result = run_flow(_flow_module(), get_pdk("edu130"),
                          FlowOptions(lint_waivers=(waiver,)))
        assert waiver in result.lint.waivers

    def test_strict_lint_passes_clean_design(self):
        result = run_flow(_flow_module(), get_pdk("edu130"),
                          FlowOptions(strict_lint=True))
        assert result.lint.clean

    def test_strict_lint_raises_on_error_finding(self, monkeypatch):
        import repro.core.flow as flow_mod

        def failing_lint(module, waivers=(), options=None, tracer=None):
            return LintReport(findings=[
                Finding("rtl.undriven", "error", module.name, "x", "boom")
            ], waivers=tuple(waivers))

        monkeypatch.setattr(flow_mod, "lint_module", failing_lint)
        with pytest.raises(FlowError, match="lint failed"):
            run_flow(_flow_module(), get_pdk("edu130"),
                     FlowOptions(strict_lint=True))

    def test_strict_lint_respects_waivers(self, monkeypatch):
        import repro.core.flow as flow_mod

        def failing_lint(module, waivers=(), options=None, tracer=None):
            return LintReport(findings=[
                Finding("rtl.undriven", "error", module.name, "x", "boom")
            ], waivers=tuple(waivers))

        monkeypatch.setattr(flow_mod, "lint_module", failing_lint)
        result = run_flow(
            _flow_module(), get_pdk("edu130"),
            FlowOptions(
                strict_lint=True,
                lint_waivers=(Waiver("rtl.undriven", reason="known"),),
            ),
        )
        assert result.lint.clean
        assert result.lint.waived
