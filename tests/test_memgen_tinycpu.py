"""Tests for the memory generator and the TinyCPU core."""

import pytest

from repro.ip import (
    AssemblerError,
    OPCODES,
    assemble,
    generate_cpu,
    make_tinycpu,
    run_program,
)
from repro.pdk import generate_register_file, get_pdk, macro_model, sweep_table
from repro.sim import Simulator
from repro.synth import check_equivalence, synthesize


class TestMacroModel:
    def test_bigger_memory_is_bigger(self):
        node = get_pdk("edu130").node
        small = macro_model(node, 64, 8)
        big = macro_model(node, 1024, 32)
        assert big.area_um2 > small.area_um2
        assert big.access_time_ps > small.access_time_ps
        assert big.leakage_nw > small.leakage_nw

    def test_density_improves_with_scaling(self):
        small_node = get_pdk("edu045").node
        old_node = get_pdk("edu180").node
        dense = macro_model(small_node, 256, 32)
        sparse = macro_model(old_node, 256, 32)
        assert dense.bit_density_kb_per_mm2 > sparse.bit_density_kb_per_mm2

    def test_cycle_exceeds_access(self):
        macro = macro_model(get_pdk("edu130").node, 256, 16)
        assert macro.cycle_time_ps > macro.access_time_ps

    def test_sweep_table(self):
        rows = sweep_table(get_pdk("edu130").node)
        assert len(rows) == 4
        areas = [r.area_um2 for r in rows]
        assert areas == sorted(areas)

    def test_invalid_config(self):
        node = get_pdk("edu130").node
        with pytest.raises(ValueError):
            macro_model(node, 1, 8)


class TestRegisterFile:
    def test_write_then_read(self):
        module = generate_register_file(8, 16)
        sim = Simulator(module)
        sim.set("wen", 1)
        for addr in range(8):
            sim.set("waddr", addr)
            sim.set("wdata", 100 + addr)
            sim.step()
        sim.set("wen", 0)
        for addr in range(8):
            sim.set("raddr", addr)
            assert sim.get("rdata") == 100 + addr

    def test_write_disabled_holds(self):
        module = generate_register_file(4, 8)
        sim = Simulator(module)
        sim.set("wen", 0)
        sim.set("waddr", 2)
        sim.set("wdata", 0xFF)
        sim.step(3)
        sim.set("raddr", 2)
        assert sim.get("rdata") == 0

    def test_synthesizes_and_checks(self):
        module = generate_register_file(4, 4)
        result = synthesize(module, get_pdk("edu130").library, verify=True,
                            verify_cycles=40)
        assert result.equivalence.passed

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            generate_register_file(6, 8)
        with pytest.raises(ValueError):
            generate_register_file(8, 0)


class TestAssembler:
    def test_labels_and_comments(self):
        program = assemble("""
            LDI 3      ; counter
        loop:
            SUB 1
            JNZ loop
            HALT
        """)
        assert len(program) == 4
        assert program[2].opcode == OPCODES["JNZ"]
        assert program[2].operand == 1  # label 'loop'

    def test_hex_literals(self):
        program = assemble("LDI 0xFF\nHALT")
        assert program[0].operand == 255

    def test_errors(self):
        for bad in (
            "FLY 1",            # unknown mnemonic
            "LDI",              # missing operand
            "HALT 3",           # unexpected operand
            "JMP nowhere",      # undefined label
            "LDI 300",          # out of range
            "",                 # empty program
            "x: x: HALT",       # duplicate label
        ):
            with pytest.raises(AssemblerError):
                assemble(bad)


class TestInterpreter:
    def test_arithmetic_program(self):
        program = assemble("LDI 10\nADD 5\nSUB 3\nXOR 0xF\nOUT\nHALT")
        state = run_program(program)
        assert state["out"] == (10 + 5 - 3) ^ 0xF
        assert state["halted"]

    def test_loop_terminates(self):
        program = assemble("""
            LDI 5
        again:
            SUB 1
            JNZ again
            OUT
            HALT
        """)
        state = run_program(program)
        assert state["out"] == 0
        assert state["halted"]

    def test_shift_ops(self):
        state = run_program(assemble("LDI 3\nSHL\nSHL\nSHR\nOUT\nHALT"))
        assert state["out"] == 6


class TestCpuRtl:
    def run_rtl(self, source, max_cycles=500):
        program = assemble(source)
        module = generate_cpu(program)
        sim = Simulator(module)
        sim.set("run", 1)
        for _ in range(max_cycles):
            if sim.get("halted_out"):
                break
            sim.step()
        return sim, run_program(program)

    def test_rtl_matches_interpreter(self):
        source = """
            LDI 0
            ADD 9
            ADD 9
            ADD 9
            OUT
        spin:
            SUB 1
            JNZ spin
            HALT
        """
        sim, reference = self.run_rtl(source)
        assert sim.get("halted_out") == 1
        assert sim.get("out") == reference["out"] == 27

    def test_run_gates_execution(self):
        program = assemble("LDI 1\nOUT\nHALT")
        sim = Simulator(generate_cpu(program))
        sim.set("run", 0)
        sim.step(10)
        assert sim.get("pc_out") == 0  # frozen without run

    def test_packaged_ip_verifies(self):
        ip = make_tinycpu()
        assert ip.verify(400).passed
        assert ip.params["reference_out"] == 42

    def test_cpu_through_synthesis(self):
        program = assemble("LDI 2\nSHL\nOUT\nHALT")
        module = generate_cpu(program)
        result = synthesize(module, get_pdk("edu130").library)
        assert check_equivalence(module, result.mapped, cycles=30).passed

    def test_custom_program_ip(self):
        ip = make_tinycpu("LDI 7\nADD 3\nOUT\nHALT")
        assert ip.verify(100).passed
