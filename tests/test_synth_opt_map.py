"""Tests for logic optimization, technology mapping and sizing."""

import pytest

from repro.hdl import ModuleBuilder, cat, mux
from repro.pdk import get_pdk
from repro.synth import (
    check_equivalence,
    lower,
    optimize,
    size_for_load,
    synthesize,
    tech_map,
)
from repro.synth.netlist import Gate, GateNetlist


@pytest.fixture(scope="module")
def lib():
    return get_pdk("edu130").library


def build_alu_like():
    b = ModuleBuilder("mini_alu")
    a = b.input("a", 8)
    c = b.input("c", 8)
    op = b.input("op", 2)
    add = (a + c).trunc(8)
    sub = (a - c).trunc(8)
    logic = mux(op[0], a & c, a | c)
    arith = mux(op[0], sub, add)
    b.output("y", mux(op[1], logic, arith))
    b.output("zero", a.eq(c))
    return b.build()


class TestOptimize:
    def test_reduces_gate_count(self):
        netlist = lower(build_alu_like())
        optimized, stats = optimize(netlist)
        assert stats.gates_after < stats.gates_before
        assert stats.iterations >= 1

    def test_preserves_semantics(self):
        module = build_alu_like()
        optimized, _ = optimize(lower(module))
        assert check_equivalence(module, optimized, cycles=60).passed

    def test_constant_folding_collapses_const_logic(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        zero = b.const(0, 8)
        b.output("y", (a & zero) | (a ^ zero))  # == a
        optimized, stats = optimize(lower(b.build()))
        assert stats.rules.get("const_fold", 0) > 0
        assert len(optimized.gates) == 0  # y collapses to a

    def test_strash_merges_duplicates(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        c = b.input("c", 8)
        b.output("y", (a & c) ^ (a & c))  # XOR(x,x) -> 0 via strash
        optimized, stats = optimize(lower(b.build()))
        assert stats.rules.get("strash", 0) > 0
        assert len(optimized.gates) == 0

    def test_double_not_removed(self):
        nl = GateNetlist("m")
        a = nl.add_input("a", 1)[0]
        n1 = nl.add_gate("NOT", a)
        n2 = nl.add_gate("NOT", n1)
        nl.set_output("y", [n2])
        optimized, stats = optimize(nl)
        assert len(optimized.gates) == 0
        assert optimized.outputs["y"] == [a]

    def test_dce_removes_unused(self):
        nl = GateNetlist("m")
        a = nl.add_input("a", 1)[0]
        nl.add_gate("NOT", a)  # dangling
        used = nl.add_gate("BUF", a)
        nl.set_output("y", [used])
        optimized, stats = optimize(nl)
        assert len(optimized.gates) == 0  # BUF folded, NOT dead

    def test_pass_ablation_fold_only(self):
        module = build_alu_like()
        netlist = lower(module)
        folded, _ = optimize(netlist, passes={"fold"})
        full, _ = optimize(netlist, passes={"fold", "strash", "dce"})
        assert len(full.gates) <= len(folded.gates)
        assert check_equivalence(module, folded, cycles=40).passed


class TestTechMap:
    def test_maps_all_gates(self, lib):
        module = build_alu_like()
        optimized, _ = optimize(lower(module))
        mapped, stats = tech_map(optimized, lib)
        assert len(mapped.cells) > 0
        assert mapped.stats()["sequential"] == 0

    def test_mapped_equivalence_area_mode(self, lib):
        module = build_alu_like()
        optimized, _ = optimize(lower(module))
        mapped, _ = tech_map(optimized, lib, objective="area")
        assert check_equivalence(module, mapped, cycles=60).passed

    def test_mapped_equivalence_delay_mode(self, lib):
        module = build_alu_like()
        optimized, _ = optimize(lower(module))
        mapped, _ = tech_map(optimized, lib, objective="delay")
        assert check_equivalence(module, mapped, cycles=60).passed

    def test_area_mode_uses_complex_cells(self, lib):
        module = build_alu_like()
        optimized, _ = optimize(lower(module))
        area_mapped, area_stats = tech_map(optimized, lib, objective="area")
        delay_mapped, _ = tech_map(optimized, lib, objective="delay")
        kinds = {inst.cell.kind for inst in area_mapped.cells}
        assert kinds & {"AOI21", "OAI21", "MUX2", "NAND3", "NOR3"}
        assert area_mapped.area_um2() <= delay_mapped.area_um2()

    def test_sequential_design_maps_dffs(self, lib):
        b = ModuleBuilder("counter")
        en = b.input("en", 1)
        count = b.register("count", 8)
        count.next = mux(en, count + 1, count)
        b.output("q", count)
        module = b.build()
        optimized, _ = optimize(lower(module))
        mapped, _ = tech_map(optimized, lib)
        assert len(mapped.seq_cells) == 8
        assert check_equivalence(module, mapped, cycles=100).passed

    def test_constant_output_gets_tie_cell(self, lib):
        b = ModuleBuilder("m")
        b.input("a", 1)
        b.output("y", b.const(1, 1))
        optimized, _ = optimize(lower(b.build()))
        mapped, _ = tech_map(optimized, lib)
        assert any(inst.cell.kind == "TIE1" for inst in mapped.cells)

    def test_unknown_objective_rejected(self, lib):
        with pytest.raises(ValueError):
            tech_map(GateNetlist("x"), lib, objective="power")


class TestSizing:
    def test_upsizes_high_fanout_driver(self, lib):
        b = ModuleBuilder("fanout")
        a = b.input("a", 1)
        c = b.input("c", 16)
        inv = ~a
        # The inverter drives 16 distinct AND gates: a heavy fanout net.
        bits = [inv & c[i] for i in range(16)]
        b.output("y", cat(*bits))
        module = b.build()
        optimized, _ = optimize(lower(module))
        mapped, _ = tech_map(optimized, lib)
        stats = size_for_load(mapped, max_load_per_drive_ff=4.0)
        assert stats.upsized > 0
        drives = {inst.cell.drive for inst in mapped.cells}
        assert max(drives) > 1

    def test_sizing_preserves_function(self, lib):
        module = build_alu_like()
        result = synthesize(module, lib, sizing=True,
                            max_load_per_drive_ff=2.0, verify=True)
        assert result.equivalence.passed


class TestSynthesizeTopLevel:
    def test_full_flow_report(self, lib):
        result = synthesize(build_alu_like(), lib, verify=True)
        report = result.report()
        assert report["equivalent"] is True
        assert report["gates_optimized"] <= report["gates_raw"]
        assert result.gate_count > 0
        assert result.gates_per_rtl_line > 0

    def test_gates_per_rtl_line_in_paper_band(self, lib):
        # The paper claims 5-20 gates per RTL line; our small designs
        # should land in (or near) that band.
        result = synthesize(build_alu_like(), lib)
        assert 1.0 < result.gates_per_rtl_line < 40.0
