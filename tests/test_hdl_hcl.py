"""Unit tests for the HCL builder frontend."""

import pytest

from repro.hdl import HdlError, ModuleBuilder, cat, mux
from repro.sim import Simulator


def build_counter(width=8):
    b = ModuleBuilder("counter")
    en = b.input("en", 1)
    count = b.register("count", width)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    return b.build()


class TestBuilderBasics:
    def test_counter_counts(self):
        sim = Simulator(build_counter())
        sim.set("en", 1)
        sim.step(5)
        assert sim.get("q") == 5

    def test_counter_holds_when_disabled(self):
        sim = Simulator(build_counter())
        sim.set("en", 1)
        sim.step(3)
        sim.set("en", 0)
        sim.step(10)
        assert sim.get("q") == 3

    def test_counter_wraps(self):
        sim = Simulator(build_counter(width=2))
        sim.set("en", 1)
        sim.step(5)
        assert sim.get("q") == 1

    def test_register_reset_value(self):
        b = ModuleBuilder("m")
        r = b.register("r", 8, reset=42)
        r.next = r
        b.output("q", r)
        sim = Simulator(b.build())
        assert sim.get("q") == 42

    def test_int_lifting(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        b.output("y", a + 200)
        sim = Simulator(b.build())
        sim.set("a", 100)
        assert sim.get("y") == 44  # (100 + 200) mod 256

    def test_mixing_builders_rejected(self):
        b1 = ModuleBuilder("m1")
        b2 = ModuleBuilder("m2")
        a = b1.input("a", 4)
        c = b2.input("c", 4)
        with pytest.raises(HdlError):
            _ = a + c


class TestOperators:
    def build_unary(self, fn, width=8):
        b = ModuleBuilder("m")
        a = b.input("a", width)
        b.output("y", fn(a))
        return b.build()

    def build_binary(self, fn, width=8):
        b = ModuleBuilder("m")
        a = b.input("a", width)
        c = b.input("c", width)
        b.output("y", fn(a, c))
        return b.build()

    def check_binary(self, fn, a, c, want, width=8):
        sim = Simulator(self.build_binary(fn, width))
        sim.set("a", a)
        sim.set("c", c)
        assert sim.get("y") == want

    def test_arith(self):
        self.check_binary(lambda a, c: a + c, 200, 100, 44)
        self.check_binary(lambda a, c: a - c, 5, 10, 251)
        self.check_binary(lambda a, c: a * c, 20, 13, 260)

    def test_bitwise(self):
        self.check_binary(lambda a, c: a & c, 0b1100, 0b1010, 0b1000)
        self.check_binary(lambda a, c: a | c, 0b1100, 0b1010, 0b1110)
        self.check_binary(lambda a, c: a ^ c, 0b1100, 0b1010, 0b0110)

    def test_shifts(self):
        self.check_binary(lambda a, c: a << c, 3, 2, 12)
        self.check_binary(lambda a, c: a >> c, 12, 2, 3)

    def test_comparisons(self):
        self.check_binary(lambda a, c: a.lt(c), 3, 5, 1)
        self.check_binary(lambda a, c: a.ge(c), 3, 5, 0)
        self.check_binary(lambda a, c: a.eq(c), 7, 7, 1)
        self.check_binary(lambda a, c: a.ne(c), 7, 7, 0)
        self.check_binary(lambda a, c: a.le(c), 5, 5, 1)
        self.check_binary(lambda a, c: a.gt(c), 6, 5, 1)

    def test_invert_and_neg(self):
        sim = Simulator(self.build_unary(lambda a: ~a))
        sim.set("a", 0b10101010)
        assert sim.get("y") == 0b01010101
        sim = Simulator(self.build_unary(lambda a: -a))
        sim.set("a", 1)
        assert sim.get("y") == 255

    def test_reductions(self):
        sim = Simulator(self.build_unary(lambda a: a.reduce_xor()))
        sim.set("a", 0b0110)
        assert sim.get("y") == 0

    def test_radd(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        b.output("y", 1 + a)
        sim = Simulator(b.build())
        sim.set("a", 41)
        assert sim.get("y") == 42


class TestBitAccess:
    def test_single_bit(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        b.output("y", a[7])
        sim = Simulator(b.build())
        sim.set("a", 0x80)
        assert sim.get("y") == 1

    def test_negative_index(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        b.output("y", a[-1])
        sim = Simulator(b.build())
        sim.set("a", 0x80)
        assert sim.get("y") == 1

    def test_slice_msb_lsb(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        b.output("y", a[7:4])
        sim = Simulator(b.build())
        sim.set("a", 0xA5)
        assert sim.get("y") == 0xA

    def test_wrong_direction_slice_rejected(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        with pytest.raises(HdlError):
            _ = a[0:7]

    def test_cat(self):
        b = ModuleBuilder("m")
        a = b.input("a", 4)
        c = b.input("c", 4)
        b.output("y", cat(a, c))
        sim = Simulator(b.build())
        sim.set("a", 0xA)
        sim.set("c", 0x5)
        assert sim.get("y") == 0xA5

    def test_zext_trunc(self):
        b = ModuleBuilder("m")
        a = b.input("a", 4)
        b.output("y", a.zext(8))
        b.output("z", (a + a).trunc(2))
        sim = Simulator(b.build())
        sim.set("a", 0xF)
        assert sim.get("y") == 0xF
        assert sim.get("z") == (0xF + 0xF) % 16 % 4


class TestHierarchy:
    def test_instance_through_builder(self):
        inner_b = ModuleBuilder("inverter")
        a = inner_b.input("a", 4)
        inner_b.output("y", ~a)
        inverter = inner_b.build()

        b = ModuleBuilder("top")
        x = b.input("x", 4)
        outs = b.instance("u0", inverter, a=x)
        b.output("y", outs["y"])
        top = b.build()

        sim = Simulator(top)
        sim.set("x", 0b0011)
        assert sim.get("y") == 0b1100

    def test_missing_input_rejected(self):
        inner_b = ModuleBuilder("inverter")
        a = inner_b.input("a", 4)
        inner_b.output("y", ~a)
        inverter = inner_b.build()

        b = ModuleBuilder("top")
        b.input("x", 4)
        with pytest.raises(HdlError, match="unconnected"):
            b.instance("u0", inverter)
