"""Tests for scan-chain insertion and the curriculum model."""

import pytest

from repro.core import AccessTier
from repro.core.curriculum import (
    CURRICULUM,
    Course,
    CurriculumError,
    course,
    courses_for_tier,
    pathway_flow_coverage,
    plan_semesters,
    total_ects,
    validate_curriculum,
)
from repro.core.steps import FlowStep
from repro.hdl import ModuleBuilder, mux
from repro.pdk import get_pdk
from repro.synth import MappedSimulator, check_equivalence, synthesize
from repro.synth.dft import (
    DftError,
    coverage_estimate,
    fault_sites,
    insert_scan_chain,
    simulate_faults,
)


def build_counter_mapped(width=4):
    b = ModuleBuilder("scan_target")
    en = b.input("en", 1)
    count = b.register("count", width)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    module = b.build()
    return module, synthesize(module, get_pdk("edu130").library).mapped


class TestScanInsertion:
    def test_chain_covers_all_flops(self):
        _, mapped = build_counter_mapped()
        report = insert_scan_chain(mapped)
        assert report.chain_length == 4
        assert report.mux_cells_added == 4
        assert report.area_overhead > 0
        assert "scan_en" in mapped.inputs
        assert "scan_out" in mapped.outputs

    def test_functional_mode_unchanged(self):
        module, mapped = build_counter_mapped()
        insert_scan_chain(mapped)
        # With scan_en held 0 (the equivalence checker's default for
        # extra inputs) behaviour matches the original RTL.
        result = check_equivalence(module, mapped, cycles=60)
        assert result.passed, result.mismatches[:3]

    def test_shift_mode_moves_patterns(self):
        _, mapped = build_counter_mapped(width=4)
        report = insert_scan_chain(mapped)
        sim = MappedSimulator(mapped)
        sim.set("en", 0)
        sim.set("scan_en", 1)
        pattern = [1, 0, 1, 1]
        for bit in pattern:
            sim.set("scan_in", bit)
            sim.step()
        # Shift out while feeding zeros: the chain is a FIFO, so the
        # pattern reappears at scan_out in the order it was fed.
        shifted_out = []
        sim.set("scan_in", 0)
        for _ in range(report.chain_length):
            shifted_out.append(sim.get("scan_out"))
            sim.step()
        assert shifted_out == pattern

    def test_double_insertion_rejected(self):
        _, mapped = build_counter_mapped()
        insert_scan_chain(mapped)
        with pytest.raises(DftError):
            insert_scan_chain(mapped)

    def test_combinational_design_rejected(self):
        b = ModuleBuilder("comb")
        a = b.input("a", 4)
        b.output("y", ~a)
        mapped = synthesize(b.build(), get_pdk("edu130").library).mapped
        with pytest.raises(DftError):
            insert_scan_chain(mapped)

    def test_coverage_improves_with_scan(self):
        # Coverage is now *measured* by word-parallel fault simulation,
        # not estimated: scan adds controllability (random state loads)
        # and observability (capture + shift-out), so the same random
        # budget detects strictly more of the fault universe.
        _, mapped = build_counter_mapped()
        before = coverage_estimate(mapped, scanned=False)
        insert_scan_chain(mapped)
        after = coverage_estimate(mapped, scanned=True)
        assert after > before
        assert after > 0.95

    def test_fault_report_accounts_for_every_fault(self):
        _, mapped = build_counter_mapped()
        insert_scan_chain(mapped)
        report = simulate_faults(mapped, scanned=True)
        assert report.total_faults == len(fault_sites(mapped))
        assert (
            report.detected_faults + len(report.undetected)
            == report.total_faults
        )
        assert report.coverage == pytest.approx(
            report.detected_faults / report.total_faults
        )
        assert "stuck-at faults" in report.summary()
        # Undetected faults name real pins of real cells.
        for site in report.undetected:
            inst = mapped.cells[site.cell_index]
            assert site.pin in inst.pins
            assert site.stuck_at in (0, 1)

    def test_injected_fault_is_found_by_scan_patterns(self):
        # A stuck output on a mux in the next-state logic must show up
        # as a detected fault, not vanish into the estimate.
        _, mapped = build_counter_mapped()
        insert_scan_chain(mapped)
        report = simulate_faults(mapped, scanned=True)
        detected = {
            (s.cell_index, s.pin, s.stuck_at)
            for s in fault_sites(mapped)
            if s not in report.undetected
        }
        mux_cells = [
            i for i, inst in enumerate(mapped.cells)
            if inst.cell.kind == "MUX2"
        ]
        assert any(
            (index, "y", stuck) in detected
            for index in mux_cells
            for stuck in (0, 1)
        )

    def test_deeper_pipelines_are_less_testable_unscanned(self):
        def pipeline(depth):
            b = ModuleBuilder(f"pipe{depth}")
            d = b.input("d", 2)
            value = d
            for i in range(depth):
                stage = b.register(f"s{i}", 2)
                stage.next = value
                value = stage
            b.output("q", value)
            return synthesize(b.build(), get_pdk("edu130").library).mapped

        # Within a fixed functional-test budget, a fault near the input
        # of a deep pipeline gets few (or zero) chances to propagate to
        # an observable output before the budget runs out.
        budget = 6
        shallow = coverage_estimate(pipeline(1), scanned=False,
                                    patterns=budget)
        deep = coverage_estimate(pipeline(5), scanned=False,
                                 patterns=budget)
        assert deep < shallow


class TestCurriculum:
    def test_catalogue_valid(self):
        validate_curriculum()

    def test_course_lookup(self):
        assert course("hdl_lab").tier is AccessTier.BEGINNER
        with pytest.raises(KeyError):
            course("quantum_devices")

    def test_tier_pathways_nest(self):
        beginner = {c.name for c in courses_for_tier(AccessTier.BEGINNER)}
        advanced = {c.name for c in courses_for_tier(AccessTier.ADVANCED)}
        assert beginner < advanced

    def test_semester_plan_respects_prerequisites(self):
        plan = plan_semesters(AccessTier.ADVANCED)
        seen: set[str] = set()
        for semester in plan:
            for name in semester:
                for prerequisite in course(name).prerequisites:
                    assert prerequisite in seen
            seen.update(semester)
        assert seen == {c.name for c in courses_for_tier(AccessTier.ADVANCED)}

    def test_semester_budget_respected(self):
        plan = plan_semesters(AccessTier.ADVANCED, ects_per_semester=12)
        for semester in plan:
            total = sum(course(name).ects for name in semester)
            assert total <= 12 or len(semester) == 1

    def test_coverage_grows_with_tier(self):
        assert (
            pathway_flow_coverage(AccessTier.BEGINNER)
            < pathway_flow_coverage(AccessTier.INTERMEDIATE)
            <= pathway_flow_coverage(AccessTier.ADVANCED)
        )

    def test_advanced_pathway_reaches_tapeout(self):
        taught = set()
        for entry in courses_for_tier(AccessTier.ADVANCED):
            taught.update(entry.teaches)
        assert FlowStep.TAPEOUT in taught

    def test_total_ects_reasonable(self):
        assert 12 <= total_ects(AccessTier.BEGINNER) <= 30
        assert total_ects(AccessTier.ADVANCED) >= 40

    def test_bad_curriculum_detected(self):
        broken = CURRICULUM + (
            Course("orphan", AccessTier.BEGINNER, 3, (), ("missing",)),
        )
        with pytest.raises(CurriculumError):
            validate_curriculum(broken)

    def test_cycle_detected(self):
        cyclic = (
            Course("a", AccessTier.BEGINNER, 3, (), ("b",)),
            Course("b", AccessTier.BEGINNER, 3, (), ("a",)),
        )
        with pytest.raises(CurriculumError, match="cycle"):
            validate_curriculum(cyclic)
