"""Tests for the end-to-end flow runner and presets."""

import pytest

from repro.core import (
    COMMERCIAL,
    OPEN,
    FlowError,
    FlowOptions,
    FlowStep,
    get_preset,
    run_flow,
)
from repro.hdl import ModuleBuilder, mux
from repro.layout import read_gds
from repro.pdk import get_pdk


def build_counter(width=8):
    b = ModuleBuilder("counter")
    en = b.input("en", 1)
    count = b.register("count", width)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    return b.build()


def build_datapath():
    b = ModuleBuilder("datapath")
    a = b.input("a", 8)
    c = b.input("c", 8)
    acc = b.register("acc", 16)
    acc.next = (acc + a * c).trunc(16)
    b.output("y", acc)
    return b.build()


@pytest.fixture(scope="module")
def counter_flow():
    return run_flow(build_counter(), get_pdk("edu130"),
                    FlowOptions(preset=OPEN))


class TestRunFlow:
    def test_flow_completes(self, counter_flow):
        assert counter_flow.ok
        assert "OK" in counter_flow.summary()

    def test_all_steps_reported(self, counter_flow):
        reported = {report.step for report in counter_flow.steps}
        for step in (
            FlowStep.RTL_DESIGN, FlowStep.SYNTHESIS, FlowStep.PLACEMENT,
            FlowStep.ROUTING, FlowStep.STATIC_TIMING_ANALYSIS,
            FlowStep.POWER_ANALYSIS, FlowStep.DESIGN_RULE_CHECK,
            FlowStep.GDS_EXPORT,
        ):
            assert step in reported

    def test_gds_is_valid(self, counter_flow):
        library = read_gds(counter_flow.gds_bytes)
        assert any(s.name == "counter" for s in library.structs)

    def test_equivalence_checked(self, counter_flow):
        report = counter_flow.step(FlowStep.EQUIVALENCE_CHECK)
        assert report.ok
        assert report.metrics["checked"]

    def test_ppa_summary_consistent(self, counter_flow):
        ppa = counter_flow.ppa
        assert ppa.area_um2 > 0
        assert ppa.fmax_mhz > 0
        assert ppa.cell_count == len(counter_flow.synthesis.mapped.cells)
        row = ppa.as_row()
        assert set(row) == {"cells", "area_um2", "die_mm2", "fmax_mhz",
                            "power_uw", "wns_ps"}

    def test_drc_clean(self, counter_flow):
        assert counter_flow.drc.clean

    def test_missing_step_lookup(self, counter_flow):
        with pytest.raises(KeyError):
            counter_flow.step(FlowStep.TAPEOUT)


class TestPresets:
    def test_get_preset(self):
        assert get_preset("open") is OPEN
        assert get_preset("commercial") is COMMERCIAL
        with pytest.raises(KeyError):
            get_preset("free")

    def test_override(self):
        tweaked = OPEN.with_overrides(utilization=0.4)
        assert tweaked.utilization == 0.4
        assert OPEN.utilization == 0.35  # original untouched

    def test_commercial_beats_open_on_fmax(self):
        module = build_datapath()
        pdk = get_pdk("edu130")
        open_result = run_flow(module, pdk, FlowOptions(preset=OPEN))
        commercial_result = run_flow(
            module, pdk, FlowOptions(preset=COMMERCIAL)
        )
        assert commercial_result.ppa.fmax_mhz >= open_result.ppa.fmax_mhz

    def test_presets_produce_equivalent_logic(self):
        # Same RTL, both presets: both pass their equivalence checks.
        module = build_datapath()
        pdk = get_pdk("edu130")
        for preset in (OPEN, COMMERCIAL):
            result = run_flow(module, pdk, FlowOptions(preset=preset))
            assert result.synthesis.equivalence.passed


class TestFlowResultJson:
    def test_round_trip_is_fixed_point(self, counter_flow):
        text = counter_flow.to_json()
        clone = type(counter_flow).from_json(text)
        assert clone.to_json() == text
        assert clone.design_name == counter_flow.design_name
        assert clone.ok and not clone.partial
        assert clone.ppa == counter_flow.ppa
        assert [r.step for r in clone.steps] == [
            r.step for r in counter_flow.steps
        ]
        # Heavy artifacts are summaries, not resurrected objects.
        assert clone.synthesis is None
        assert clone.gds_bytes is None

    def test_schema_is_pinned(self, counter_flow):
        import json

        payload = json.loads(counter_flow.to_json())
        assert payload["schema"] == 2
        assert type(counter_flow).JSON_SCHEMA == 2
        # The v2 key set is a compatibility contract: additions or
        # removals must bump JSON_SCHEMA.
        assert set(payload) == {
            "schema", "design", "pdk", "preset", "clock_period_ps",
            "ok", "partial", "steps", "ppa", "lint", "failures",
            "synthesis", "timing", "power", "drc", "gds", "lec", "lvs",
        }
        assert payload["gds"]["n_bytes"] == len(counter_flow.gds_bytes)

    def test_schema_v1_still_readable(self, counter_flow):
        # v2 is purely additive over v1; old payloads must load.
        import json

        payload = json.loads(counter_flow.to_json())
        payload["schema"] = 1
        del payload["lvs"]
        clone = type(counter_flow).from_json(json.dumps(payload))
        assert clone.design_name == counter_flow.design_name

    def test_wall_clock_free(self, counter_flow):
        # Serializing twice (and through a round trip) is byte-stable;
        # no runtimes or timestamps may leak into the payload.
        text = counter_flow.to_json()
        assert text == counter_flow.to_json()
        assert "runtime" not in text

    def test_unknown_schema_rejected(self, counter_flow):
        import json

        payload = json.loads(counter_flow.to_json())
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            type(counter_flow).from_json(json.dumps(payload))
