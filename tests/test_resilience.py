"""Tests for repro.resil: fault injection, retry/backoff, checkpoints,
graceful degradation, and the FlowOptions request API."""

import math
import random
import warnings

import pytest

from repro.core import (
    AccessTier,
    CloudPlatform,
    EnablementHub,
    FlowError,
    FlowOptions,
    FlowStep,
    HubError,
    User,
    run_flow,
    run_signoff,
)
from repro.core.presets import COMMERCIAL, OPEN
from repro.ip.digital import make_counter
from repro.pdk import get_pdk
from repro.resil import (
    CHECKPOINT_STAGES,
    DirectoryCheckpointStore,
    ExponentialBackoff,
    FaultInjector,
    FaultModel,
    FlowFailure,
    InjectedFault,
    MemoryCheckpointStore,
    flow_cache_key,
)


def counter_module(width: int = 4):
    return make_counter(width).module


def faulty_platform(seed: int = 7, **model_kwargs) -> CloudPlatform:
    defaults = dict(mtbf_min=90.0, mttr_min=20.0, preemption_prob=0.05)
    defaults.update(model_kwargs)
    return CloudPlatform(
        servers=3, fault_model=FaultModel(seed=seed, **defaults)
    )


def schedule(platform: CloudPlatform):
    return [
        (j.outcome, j.attempts, j.start_min, j.finish_min)
        for j in platform.jobs()
    ]


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(mtbf_min=0.0)
        with pytest.raises(ValueError):
            FaultModel(preemption_prob=1.5)

    def test_sampler_is_seed_deterministic(self):
        model = FaultModel(seed=11, mtbf_min=60.0, preemption_prob=0.1)
        sampler_a, sampler_b = model.sampler(), model.sampler()
        draws_a = [sampler_a.draw(30.0) for _ in range(50)]
        draws_b = [sampler_b.draw(30.0) for _ in range(50)]
        assert draws_a == draws_b

    def test_infinite_mtbf_never_strikes(self):
        sampler = FaultModel(seed=1).sampler()
        assert all(
            sampler.draw(1000.0) == ("ok", 1.0) for _ in range(100)
        )


class TestSeededFaultDeterminism:
    def submit_workload(self, platform):
        rng = random.Random(3)
        for i in range(20):
            platform.submit(
                f"u{i % 4}", rng.uniform(10, 120), rng.uniform(0, 240),
                deadline_min=500.0 if i % 3 == 0 else None,
            )

    def test_same_seed_same_schedule(self):
        runs = []
        for _ in range(2):
            platform = faulty_platform(seed=7)
            self.submit_workload(platform)
            platform.run()
            runs.append(schedule(platform))
        assert runs[0] == runs[1]

    def test_different_seed_differs(self):
        schedules = []
        for seed in (7, 8):
            platform = faulty_platform(seed=seed)
            self.submit_workload(platform)
            platform.run()
            schedules.append(schedule(platform))
        assert schedules[0] != schedules[1]

    def test_stats_count_fault_outcomes(self):
        platform = faulty_platform(seed=7)
        self.submit_workload(platform)
        stats = platform.run()
        assert stats.retries > 0
        assert stats.faults >= stats.retries
        assert stats.jobs + stats.failed == 20

    def test_fault_spans_traced(self):
        from repro.obs import Tracer

        tracer = Tracer()
        platform = CloudPlatform(
            servers=2, tracer=tracer,
            fault_model=FaultModel(seed=5, mtbf_min=30.0, mttr_min=10.0),
        )
        self.submit_workload(platform)
        platform.run()
        names = {s.name for s in tracer.spans}
        assert "cloud.job.fault" in names
        assert "resil.retry" in names


class TestExponentialBackoff:
    def test_raw_schedule_doubles_and_caps(self):
        policy = ExponentialBackoff(base_min=2.0, factor=2.0,
                                    max_backoff_min=10.0)
        assert [policy.raw_backoff_min(k) for k in (1, 2, 3, 4)] == [
            2.0, 4.0, 8.0, 10.0
        ]

    def test_jitter_stays_within_bounds(self):
        policy = ExponentialBackoff(base_min=4.0, jitter=0.25)
        rng = random.Random(0)
        for attempt in (1, 2, 3):
            raw = policy.raw_backoff_min(attempt)
            for _ in range(200):
                delay = policy.backoff_min(attempt, rng)
                assert raw * 0.75 <= delay <= raw * 1.25

    def test_no_rng_means_no_jitter(self):
        policy = ExponentialBackoff(base_min=3.0)
        assert policy.backoff_min(2) == 6.0

    def test_gives_up_after_max_attempts(self):
        policy = ExponentialBackoff(max_attempts=3)
        assert not policy.gives_up(2)
        assert policy.gives_up(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(jitter=1.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(max_attempts=0)


class TestDeadlines:
    def test_deadline_aware_policy_abandons_hopeless_retry(self):
        platform = CloudPlatform(
            servers=1,
            fault_model=FaultModel(seed=2, mtbf_min=5.0, mttr_min=5.0),
        )
        platform.submit("u", 60.0, 0.0, deadline_min=30.0)
        stats = platform.run()
        job = platform.jobs()[0]
        assert job.outcome == "gave_up"
        assert stats.failed == 1

    def test_utilization_measured_from_first_submit(self):
        # Regression: a job submitted late must not dilute utilization
        # with the idle time before anything was submitted.
        platform = CloudPlatform(servers=1)
        platform.submit("u", 10.0, 100.0)
        stats = platform.run()
        assert stats.utilization == pytest.approx(1.0)


class TestCheckpointStores:
    def test_cache_key_depends_on_inputs(self):
        module = counter_module()
        base = flow_cache_key(module, "edu130", OPEN, 1)
        assert base == flow_cache_key(counter_module(), "edu130", OPEN, 1)
        assert base != flow_cache_key(module, "edu180", OPEN, 1)
        assert base != flow_cache_key(module, "edu130", COMMERCIAL, 1)
        assert base != flow_cache_key(module, "edu130", OPEN, 2)
        assert base != flow_cache_key(counter_module(6), "edu130", OPEN, 1)

    def test_memory_store_round_trip_is_a_copy(self):
        store = MemoryCheckpointStore()
        store.save("k", "placement", {"xs": [1, 2]})
        loaded = store.load("k", "placement")
        assert loaded == {"xs": [1, 2]}
        loaded["xs"].append(3)
        assert store.load("k", "placement") == {"xs": [1, 2]}

    def test_directory_store_persists(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "ckpt")
        store.save("key1", "routing", [1.5, 2.5])
        again = DirectoryCheckpointStore(tmp_path / "ckpt")
        assert again.load("key1", "routing") == [1.5, 2.5]
        assert again.load("key1", "floorplan") is None
        assert set(again.stages("key1")) == {"routing"}


class TestFlowOptionsApi:
    def test_string_preset_coerced(self):
        assert FlowOptions(preset="commercial").preset is COMMERCIAL

    def test_with_overrides(self):
        options = FlowOptions(seed=1)
        assert options.with_overrides(seed=9).seed == 9
        assert options.seed == 1

    def test_legacy_kwargs_warn_once_and_match(self):
        module, pdk = counter_module(), get_pdk("edu130")
        new = run_flow(module, pdk, FlowOptions(seed=2))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            old = run_flow(module, pdk, seed=2)
        deprecations = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert new.gds_bytes == old.gds_bytes

    def test_positional_preset_is_legacy(self):
        module, pdk = counter_module(), get_pdk("edu130")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_flow(module, pdk, COMMERCIAL)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert result.preset is COMMERCIAL

    def test_mixing_options_and_legacy_rejected(self):
        with pytest.raises(TypeError):
            run_flow(counter_module(), get_pdk("edu130"),
                     FlowOptions(), seed=2)

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError):
            run_flow(counter_module(), get_pdk("edu130"), bogus=1)


class TestFaultInjector:
    def test_budgeted_trips(self):
        injector = FaultInjector("routing", times=2)
        assert injector.trip("routing")
        assert injector.trip("routing")
        assert not injector.trip("routing")
        assert not injector.trip("placement")

    def test_check_raises_with_stage(self):
        injector = FaultInjector("placement")
        with pytest.raises(InjectedFault) as exc:
            injector.check("placement")
        assert exc.value.stage == "placement"


class TestGracefulDegradation:
    def test_failed_stage_recorded_not_raised(self):
        result = run_flow(
            counter_module(), get_pdk("edu130"),
            FlowOptions(continue_on_error=True,
                        inject=FaultInjector("routing", times=99)),
        )
        assert result.partial and not result.ok
        assert [f.stage for f in result.failures] == ["routing"]
        assert result.failures[0].kind == "injected"
        routing = result.step(FlowStep.ROUTING)
        assert not routing.ok
        # Upstream stages still ran and are reported.
        assert result.step(FlowStep.PLACEMENT).ok
        assert result.synthesis is not None
        # Downstream stages that need routing are absent, not crashed.
        assert result.timing is None and result.gds_bytes is None

    def test_without_continue_on_error_raises(self):
        with pytest.raises(FlowError):
            run_flow(
                counter_module(), get_pdk("edu130"),
                FlowOptions(inject=FaultInjector("routing")),
            )

    def test_downstream_of_analysis_fault_still_runs(self):
        result = run_flow(
            counter_module(), get_pdk("edu130"),
            FlowOptions(continue_on_error=True,
                        inject=FaultInjector("static_timing_analysis")),
        )
        assert result.timing is None
        # Power, DRC and GDS export do not need STA: they all ran.
        assert result.power is not None
        assert result.drc is not None and result.drc.clean
        assert result.gds_bytes
        assert result.partial

    def test_partial_result_blocks_signoff(self):
        result = run_flow(
            counter_module(), get_pdk("edu130"),
            FlowOptions(continue_on_error=True,
                        inject=FaultInjector("routing", times=99)),
        )
        report = run_signoff(result)
        assert not report.ready_for_tapeout
        flow_complete = report.items[0]
        assert flow_complete.name == "flow_complete"
        assert not flow_complete.passed and not flow_complete.waivable

    def test_failure_kind_validated(self):
        with pytest.raises(ValueError):
            FlowFailure("routing", "boom", kind="mystery")


class TestCheckpointResume:
    def test_resume_is_byte_identical(self):
        module, pdk = counter_module(), get_pdk("edu130")
        cold = run_flow(module, pdk, FlowOptions(seed=3))
        store = MemoryCheckpointStore()
        first = run_flow(module, pdk,
                         FlowOptions(seed=3, checkpoints=store))
        resumed = run_flow(module, pdk,
                           FlowOptions(seed=3, checkpoints=store))
        assert first.gds_bytes == cold.gds_bytes
        assert resumed.gds_bytes == cold.gds_bytes
        assert store.hits == len(CHECKPOINT_STAGES)

    def test_interrupted_after_placement_resumes_identically(self):
        module, pdk = counter_module(), get_pdk("edu130")
        cold = run_flow(module, pdk, FlowOptions(seed=3))
        store = MemoryCheckpointStore()
        interrupted = run_flow(
            module, pdk,
            FlowOptions(seed=3, checkpoints=store, continue_on_error=True,
                        inject=FaultInjector("routing")),
        )
        assert interrupted.gds_bytes is None
        assert set(store.stages(flow_cache_key(module, pdk.name,
                                               OPEN, 3))) >= {
            "synthesis", "floorplan", "placement", "clock_tree",
        }
        resumed = run_flow(module, pdk,
                           FlowOptions(seed=3, checkpoints=store))
        assert resumed.ok
        assert resumed.gds_bytes == cold.gds_bytes

    def test_resume_false_recomputes(self):
        module, pdk = counter_module(), get_pdk("edu130")
        store = MemoryCheckpointStore()
        run_flow(module, pdk, FlowOptions(seed=3, checkpoints=store))
        hits_before = store.hits
        run_flow(module, pdk,
                 FlowOptions(seed=3, checkpoints=store, resume=False))
        assert store.hits == hits_before

    def test_different_seed_different_key(self):
        module, pdk = counter_module(), get_pdk("edu130")
        store = MemoryCheckpointStore()
        run_flow(module, pdk, FlowOptions(seed=3, checkpoints=store))
        run_flow(module, pdk, FlowOptions(seed=4, checkpoints=store))
        assert store.hits == 0


class TestHubRetries:
    def make_hub(self, **kwargs) -> EnablementHub:
        hub = EnablementHub(**kwargs)
        hub.enroll(User("alice", "tu-kaiserslautern"),
                   AccessTier.INTERMEDIATE)
        return hub

    def test_transient_fault_retried_from_checkpoint(self):
        hub = self.make_hub()
        record = hub.run_design(
            "alice", counter_module(), "edu130",
            options=FlowOptions(seed=3, inject=FaultInjector("routing")),
        )
        assert record.attempts == 2
        assert [f.kind for f in record.failures] == ["crash"]
        assert record.result.ok
        # The retry resumed: every pre-routing stage came from checkpoint.
        assert hub.checkpoints.hits >= 4
        assert record.queued_minutes > 0

    def test_gives_up_after_policy_budget(self):
        hub = self.make_hub(
            retry_policy=ExponentialBackoff(max_attempts=2)
        )
        with pytest.raises(HubError, match="after 2 attempt"):
            hub.run_design(
                "alice", counter_module(), "edu130",
                options=FlowOptions(
                    seed=3, inject=FaultInjector("routing", times=99)
                ),
            )

    def test_deadline_blocks_retry(self):
        hub = self.make_hub()
        with pytest.raises(HubError, match="deadline"):
            hub.run_design(
                "alice", counter_module(), "edu130",
                options=FlowOptions(
                    seed=3, inject=FaultInjector("routing", times=99)
                ),
                deadline_minute=0.25,
            )

    def test_partial_job_cannot_tape_out(self):
        hub = self.make_hub()
        record = hub.run_design(
            "alice", counter_module(), "edu130",
            options=FlowOptions(
                seed=3, continue_on_error=True,
                inject=FaultInjector("routing", times=99),
            ),
        )
        assert record.result.partial
        with pytest.raises(HubError, match="signoff blocks"):
            hub.request_tapeout("alice", record)
