"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_pdks(self, capsys):
        assert main(["pdks"]) == 0
        out = capsys.readouterr().out
        for name in ("edu045", "edu130", "edu180"):
            assert name in out

    def test_cells(self, capsys):
        assert main(["cells", "edu130"]) == 0
        out = capsys.readouterr().out
        assert "NAND2_X1" in out
        assert "DFF_X4" in out

    def test_ips(self, capsys):
        assert main(["ips"]) == 0
        out = capsys.readouterr().out
        assert "tinycpu" in out
        assert "fifo" in out

    def test_liberty(self, capsys):
        assert main(["liberty", "edu180"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("library (edu180_stdcells)")

    def test_lef(self, capsys):
        assert main(["lef", "edu180"]) == 0
        out = capsys.readouterr().out
        assert "MACRO INV_X1" in out

    def test_flow_with_collaterals(self, capsys, tmp_path):
        code = main([
            "flow", "--ip", "counter", "--pdk", "edu130",
            "--verify-cycles", "50", "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "OK" in out
        for suffix in (".v", ".rpt", ".def", ".gds"):
            assert (tmp_path / f"counter8{suffix}").exists()

    def test_flow_trace_round_trip(self, capsys, tmp_path):
        trace_path = tmp_path / "nested" / "trace.jsonl"
        code = main([
            "flow", "--ip", "counter", "--pdk", "edu130",
            "--verify-cycles", "50", "--trace", str(trace_path),
        ])
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        assert trace_path.exists()

        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "== timeline ==" in out
        assert "step.placement" in out
        assert "== by span (self/cumulative) ==" in out

    def test_trace_missing_file(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_flow_unknown_ip(self, capsys):
        assert main(["flow", "--ip", "gpu"]) == 2
        assert "unknown IP" in capsys.readouterr().err

    def test_bad_pdk_rejected(self):
        with pytest.raises(SystemExit):
            main(["cells", "sky130"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_flow_from_verilog_file(self, capsys, tmp_path):
        source = tmp_path / "inv.v"
        source.write_text(
            "module inv4 (a, y);\n  input [3:0] a;\n  output [3:0] y;\n"
            "  assign y = ~a;\nendmodule\n"
        )
        assert main(["flow", "--verilog", str(source), "--pdk", "edu180"]) == 0
        out = capsys.readouterr().out
        assert "parsed inv4" in out
        assert "OK" in out

    def test_flow_requires_a_source(self, capsys):
        assert main(["flow"]) == 2
        assert "required" in capsys.readouterr().err
