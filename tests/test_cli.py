"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_pdks(self, capsys):
        assert main(["pdks"]) == 0
        out = capsys.readouterr().out
        for name in ("edu045", "edu130", "edu180"):
            assert name in out

    def test_cells(self, capsys):
        assert main(["cells", "edu130"]) == 0
        out = capsys.readouterr().out
        assert "NAND2_X1" in out
        assert "DFF_X4" in out

    def test_ips(self, capsys):
        assert main(["ips"]) == 0
        out = capsys.readouterr().out
        assert "tinycpu" in out
        assert "fifo" in out

    def test_liberty(self, capsys):
        assert main(["liberty", "edu180"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("library (edu180_stdcells)")

    def test_lef(self, capsys):
        assert main(["lef", "edu180"]) == 0
        out = capsys.readouterr().out
        assert "MACRO INV_X1" in out

    def test_flow_with_collaterals(self, capsys, tmp_path):
        code = main([
            "flow", "--ip", "counter", "--pdk", "edu130",
            "--verify-cycles", "50", "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "OK" in out
        for suffix in (".v", ".rpt", ".def", ".gds"):
            assert (tmp_path / f"counter8{suffix}").exists()

    def test_flow_trace_round_trip(self, capsys, tmp_path):
        trace_path = tmp_path / "nested" / "trace.jsonl"
        code = main([
            "flow", "--ip", "counter", "--pdk", "edu130",
            "--verify-cycles", "50", "--trace", str(trace_path),
        ])
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        assert trace_path.exists()

        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "== timeline ==" in out
        assert "step.placement" in out
        assert "== by span (self/cumulative) ==" in out

    def test_trace_missing_file(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_flow_unknown_ip(self, capsys):
        assert main(["flow", "--ip", "gpu"]) == 2
        assert "unknown IP" in capsys.readouterr().err

    def test_bad_pdk_rejected(self):
        with pytest.raises(SystemExit):
            main(["cells", "sky130"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_flow_from_verilog_file(self, capsys, tmp_path):
        source = tmp_path / "inv.v"
        source.write_text(
            "module inv4 (a, y);\n  input [3:0] a;\n  output [3:0] y;\n"
            "  assign y = ~a;\nendmodule\n"
        )
        assert main(["flow", "--verilog", str(source), "--pdk", "edu180"]) == 0
        out = capsys.readouterr().out
        assert "parsed inv4" in out
        assert "OK" in out

    def test_flow_requires_a_source(self, capsys):
        assert main(["flow"]) == 2
        assert "required" in capsys.readouterr().err


class TestLintCommand:
    """The exit-code contract: nonzero only for error-severity findings."""

    def test_demo_fails_with_rich_report(self, capsys):
        assert main(["lint", "--demo"]) == 1
        out = capsys.readouterr().out
        assert "rtl.comb-loop" in out
        assert "net.floating-input" in out

    def test_clean_ip_exits_zero_despite_warnings(self, capsys):
        # The mapped counter has genuine warnings (dangling INV cells,
        # high-fanout nets) — warnings alone must not fail the command.
        assert main(["lint", "--ip", "counter"]) == 0
        out = capsys.readouterr().out
        assert "warning" in out
        assert "0 errors" in out

    def test_strict_promotes_warnings_to_errors(self, capsys, tmp_path):
        source = tmp_path / "spare.v"
        source.write_text(
            "module spare (a, unused, y);\n"
            "  input [3:0] a;\n  input [3:0] unused;\n  output [3:0] y;\n"
            "  assign y = ~a;\nendmodule\n"
        )
        # Non-strict: the unused input is only a warning.
        assert main(["lint", "--verilog", str(source)]) == 0
        capsys.readouterr()
        # Strict: the same finding is now an error.
        assert main(["lint", "--verilog", str(source), "--strict"]) == 1
        assert "rtl.unused-input" in capsys.readouterr().out

    def test_strict_failure_waived_back_to_zero(self, capsys, tmp_path):
        source = tmp_path / "spare.v"
        source.write_text(
            "module spare (a, unused, y);\n"
            "  input [3:0] a;\n  input [3:0] unused;\n  output [3:0] y;\n"
            "  assign y = ~a;\nendmodule\n"
        )
        code = main([
            "lint", "--verilog", str(source), "--strict",
            "--waive", "rtl.unused-input@unused",
            "--waive", "net.*",
        ])
        assert code == 0
        assert "waived" in capsys.readouterr().out

    def test_json_to_stdout_round_trips(self, capsys):
        from repro.lint import LintReport

        assert main(["lint", "--demo", "--json"]) == 1
        report = LintReport.from_json(capsys.readouterr().out)
        assert len(report.rule_ids()) >= 8
        assert not report.clean

    def test_json_to_file(self, capsys, tmp_path):
        from repro.lint import LintReport

        path = tmp_path / "out" / "lint.json"
        assert main(["lint", "--ip", "counter", "--json", str(path)]) == 0
        assert "lint report written" in capsys.readouterr().out
        report = LintReport.from_json(path.read_text())
        assert report.clean

    def test_waiver_file(self, capsys, tmp_path):
        waivers = tmp_path / "waivers.txt"
        waivers.write_text("rtl.* # demo\nnet.* # demo\n")
        assert main(["lint", "--demo", "--waiver-file", str(waivers)]) == 0
        assert "waived" in capsys.readouterr().out

    def test_bad_waiver_spec_is_usage_error(self, capsys):
        assert main(["lint", "--demo", "--waive", "  "]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_waiver_file_is_usage_error(self, capsys, tmp_path):
        code = main(["lint", "--demo",
                     "--waiver-file", str(tmp_path / "nope.txt")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_lint_requires_a_source(self, capsys):
        assert main(["lint"]) == 2
        assert "required" in capsys.readouterr().err

    def test_lint_unknown_ip(self, capsys):
        assert main(["lint", "--ip", "gpu"]) == 2
        assert "unknown IP" in capsys.readouterr().err

    def test_rtl_only_skips_netlist_rules(self, capsys):
        assert main(["lint", "--ip", "counter", "--rtl-only"]) == 0
        out = capsys.readouterr().out
        assert "net." not in out


class TestEditCommand:
    def test_edit_with_rtl_file(self, capsys, tmp_path):
        import json

        from repro.hdl import to_verilog
        from repro.ip import make_counter

        rtl = tmp_path / "counter8.v"
        rtl.write_text(to_verilog(make_counter(width=8, step=3).module))
        report = tmp_path / "edit.json"
        code = main([
            "edit", "--ip", "counter", "--module", "counter8",
            "--rtl", str(rtl), "--json", str(report),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "opened counter8 on edu130" in out
        assert "dirty=['counter8']" in out
        assert "lec: equivalent" in out
        # Wall-clock timings live in the JSON report, never on stdout.
        assert "ms" not in out
        payload = json.loads(report.read_text())
        assert payload["ok"]
        assert payload["fallback"] is None
        assert payload["edit_ms"] > 0

    def test_edit_requires_a_source(self, capsys):
        assert main(["edit", "--ip", "counter"]) == 2
        assert "required" in capsys.readouterr().err

    def test_edit_demo_conflicts_with_rtl(self, capsys, tmp_path):
        rtl = tmp_path / "x.v"
        rtl.write_text("module x(); endmodule")
        code = main(["edit", "--demo", "--module", "sevenseg",
                     "--rtl", str(rtl)])
        assert code == 2
        assert "replaces" in capsys.readouterr().err

    def test_edit_unknown_ip(self, capsys):
        assert main(["edit", "--ip", "gpu", "--demo"]) == 2
        assert "--demo edits the catalogue" in capsys.readouterr().err
