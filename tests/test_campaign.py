"""Tests for repro.campaign: fair-share scheduling, the global result
cache, serial-vs-process-pool equivalence, and the shared cache key."""

import pickle

import pytest

from repro.campaign import (
    Campaign,
    CampaignError,
    DirectoryResultCache,
    FairShareScheduler,
    FifoScheduler,
    MemoryResultCache,
    evaluate_schedule,
    nearest_rank_p95,
    result_cache_key,
    result_signature,
)
from repro.campaign.cache import RESULT_KEY_FIELDS
from repro.core import (
    AccessTier,
    CampaignRequest,
    EnablementHub,
    FlowOptions,
    HubError,
    User,
    run_flow,
)
from repro.ip.digital import make_counter, make_gray_counter
from repro.obs.metrics import MetricsRegistry
from repro.pdk import get_pdk
from repro.resil import (
    DirectoryCheckpointStore,
    FaultInjector,
    StageCheckpointer,
    flow_cache_key,
)
from repro.resil import cachekey as cachekey_module
from repro.resil import checkpoint as checkpoint_module


def counter_module(width: int = 4):
    return make_counter(width).module


def gray_module(width: int = 4):
    return make_gray_counter(width).module


def build_campaign(copies: int = 3, tenants: int = 2, **kwargs) -> Campaign:
    """``copies`` duplicates each of two designs across ``tenants``."""
    campaign = Campaign(**kwargs)
    for index in range(copies):
        tenant = f"uni{index % tenants}"
        campaign.submit(tenant, counter_module(), "edu130")
        campaign.submit(tenant, gray_module(), "edu130")
    return campaign


# -- shared cache key -------------------------------------------------------


class TestCacheKey:
    def test_checkpoint_and_campaign_share_one_implementation(self):
        # The satellite contract: no drift is possible because the
        # checkpoint path re-exports the one shared function.
        assert checkpoint_module.flow_cache_key is cachekey_module.flow_cache_key
        assert flow_cache_key is cachekey_module.flow_cache_key

    def test_base_keys_identical_across_both_paths(self):
        module = counter_module()
        options = FlowOptions(seed=9)
        checkpoint_key = flow_cache_key(
            module, "edu130", options.preset, options.seed
        )
        campaign_base = cachekey_module.flow_cache_key(
            module, "edu130", options.preset, options.seed, extra=None
        )
        assert checkpoint_key == campaign_base
        # And the checkpointer binds exactly that key.
        ckpt = StageCheckpointer(store=None, key=checkpoint_key, resume=False)
        assert ckpt.key == campaign_base

    def test_extra_knobs_change_the_key(self):
        module = counter_module()
        preset = FlowOptions().preset
        base = flow_cache_key(module, "edu130", preset, 1)
        extended = flow_cache_key(
            module, "edu130", preset, 1, extra={"clock_period_ps": 5000.0}
        )
        assert base != extended
        # Empty extra stays byte-compatible with the historical key.
        assert flow_cache_key(module, "edu130", preset, 1, extra={}) == base

    def test_result_key_covers_every_result_affecting_knob(self):
        module = counter_module()
        base = result_cache_key(module, "edu130", FlowOptions())
        assert base == result_cache_key(module, "edu130", FlowOptions())
        changed = [
            FlowOptions(clock_period_ps=4_000.0),
            FlowOptions(strict_drc=False),
            FlowOptions(strict_lint=True),
            FlowOptions(formal_lec=True),
            FlowOptions(continue_on_error=True),
            FlowOptions(seed=2),
            FlowOptions(preset="commercial"),
        ]
        keys = {result_cache_key(module, "edu130", o) for o in changed}
        assert base not in keys
        assert len(keys) == len(changed)

    def test_execution_only_knobs_do_not_change_the_key(self):
        from repro.resil import MemoryCheckpointStore

        module = counter_module()
        plain = result_cache_key(module, "edu130", FlowOptions())
        wired = result_cache_key(
            module, "edu130",
            FlowOptions(checkpoints=MemoryCheckpointStore(), resume=False),
        )
        assert plain == wired
        assert "checkpoints" not in RESULT_KEY_FIELDS

    def test_rtl_edit_misses(self):
        options = FlowOptions()
        assert result_cache_key(
            counter_module(4), "edu130", options
        ) != result_cache_key(counter_module(5), "edu130", options)


# -- result cache backends --------------------------------------------------


class TestMemoryResultCache:
    def run_result(self):
        return run_flow(counter_module(), get_pdk("edu130"), FlowOptions())

    def test_hit_miss_accounting(self):
        cache = MemoryResultCache()
        assert cache.get("k") is None
        cache.put("k", self.run_result())
        assert cache.get("k") is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_hits_share_one_deserialized_instance(self):
        # FlowResult is read-only downstream, so the default mode hands
        # every hit the same object: a hit is a dict lookup, not an
        # unpickle of the whole artifact graph.
        cache = MemoryResultCache()
        cache.put("k", self.run_result())
        assert cache.get("k") is cache.get("k")

    def test_put_decouples_cache_from_the_producer(self):
        cache = MemoryResultCache()
        produced = self.run_result()
        cache.put("k", produced)
        produced.design_name = "mutated-after-put"
        assert cache.get("k").design_name != "mutated-after-put"

    def test_private_copies_mode_isolates_readers(self):
        cache = MemoryResultCache(private_copies=True)
        cache.put("k", self.run_result())
        first = cache.get("k")
        first.design_name = "mutated"
        assert cache.get("k").design_name != "mutated"
        assert first is not cache.get("k")

    def test_lru_eviction_order(self):
        cache = MemoryResultCache(max_entries=2)
        result = self.run_result()
        cache.put("a", result)
        cache.put("b", result)
        cache.get("a")  # refresh a: b is now the coldest
        cache.put("c", result)
        assert set(cache.keys()) == {"a", "c"}
        assert cache.evictions == 1

    def test_max_bytes_evicts_cold_entries(self):
        result = self.run_result()
        blob = len(pickle.dumps(result, protocol=4))
        cache = MemoryResultCache(max_bytes=2 * blob)
        for key in ("a", "b", "c"):
            cache.put(key, result)
        assert cache.keys() == ["b", "c"]
        assert cache.total_bytes() <= 2 * blob

    def test_newest_entry_survives_even_when_oversized(self):
        result = self.run_result()
        cache = MemoryResultCache(max_bytes=1)
        cache.put("only", result)
        assert cache.keys() == ["only"]


class TestDirectoryResultCache:
    def test_round_trip_across_instances(self, tmp_path):
        result = run_flow(counter_module(), get_pdk("edu130"), FlowOptions())
        root = str(tmp_path / "results")
        DirectoryResultCache(root).put("k", result)
        loaded = DirectoryResultCache(root).get("k")
        assert loaded is not None
        assert result_signature(loaded) == result_signature(result)

    def test_lru_eviction_order(self, tmp_path):
        result = run_flow(counter_module(), get_pdk("edu130"), FlowOptions())
        cache = DirectoryResultCache(str(tmp_path), max_entries=2)
        cache.put("a", result)
        cache.put("b", result)
        cache.get("a")
        cache.put("c", result)
        assert set(cache.keys()) == {"a", "c"}
        assert cache.evictions == 1
        assert len(cache) == 2


# -- bounded checkpoint store (satellite) -----------------------------------


class TestDirectoryCheckpointStoreLru:
    def test_unbounded_by_default(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        for index in range(10):
            store.save(f"key{index}", "synthesis", {"n": index})
        assert store.evictions == 0
        assert len(store._entries()) == 10

    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path), max_entries=2)
        store.save("k1", "synthesis", 1)
        store.save("k2", "synthesis", 2)
        store.load("k1", "synthesis")  # refresh k1: k2 is the coldest
        store.save("k3", "synthesis", 3)
        assert store.evictions == 1
        assert store.load("k2", "synthesis") is None
        assert store.load("k1", "synthesis") == 1
        assert store.load("k3", "synthesis") == 3

    def test_eviction_strictly_follows_recency_order(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path), max_entries=3)
        for key in ("a", "b", "c"):
            store.save(key, "synthesis", key)
        for key in ("c", "b", "a"):  # reversed recency
            store.load(key, "synthesis")
        store.save("d", "synthesis", "d")  # evicts c (coldest)
        store.save("e", "synthesis", "e")  # evicts b
        survivors = {
            key for key in ("a", "b", "c", "d", "e")
            if store.has(key, "synthesis")
        }
        assert survivors == {"a", "d", "e"}

    def test_max_bytes_budget(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path), max_bytes=1)
        store.save("k1", "synthesis", list(range(100)))
        store.save("k2", "synthesis", list(range(100)))
        # The just-written entry always survives, the cold one goes.
        assert store.load("k1", "synthesis") is None
        assert store.load("k2", "synthesis") is not None

    def test_empty_key_directories_removed(self, tmp_path):
        import os

        store = DirectoryCheckpointStore(str(tmp_path), max_entries=1)
        store.save("k1", "synthesis", 1)
        store.save("k2", "synthesis", 2)
        assert not os.path.isdir(str(tmp_path / "k1"))

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DirectoryCheckpointStore(str(tmp_path), max_entries=0)
        with pytest.raises(ValueError):
            DirectoryCheckpointStore(str(tmp_path), max_bytes=0)


# -- scheduler invariants ---------------------------------------------------


def make_jobs(spec):
    """Jobs from (tenant, est_minutes, deadline_min) tuples, ids in order."""
    from repro.campaign import CampaignJob

    jobs = []
    for index, (tenant, est, deadline) in enumerate(spec):
        jobs.append(CampaignJob(
            job_id=index, tenant=tenant, module=None, pdk_name="edu130",
            options=None, est_minutes=est, deadline_min=deadline,
        ))
    return jobs


class TestScheduler:
    def test_same_seed_same_order(self):
        spec = [(f"uni{i % 3}", 10.0 + i, None) for i in range(20)]
        first = FairShareScheduler().order(make_jobs(spec), seed=42)
        second = FairShareScheduler().order(make_jobs(spec), seed=42)
        assert [j.job_id for j in first] == [j.job_id for j in second]

    def test_fifo_is_submission_order(self):
        spec = [("b", 10.0, None), ("a", 10.0, None), ("b", 10.0, None)]
        ordered = FifoScheduler().order(make_jobs(spec), seed=0)
        assert [j.job_id for j in ordered] == [0, 1, 2]

    def test_no_starvation_under_skewed_load(self):
        # Tenant "big" floods the queue before "small" submits anything;
        # fair share must still interleave small's jobs near the front.
        spec = [("big", 10.0, None)] * 30 + [("small", 10.0, None)] * 3
        ordered = FairShareScheduler().order(make_jobs(spec), seed=1)
        positions = [
            pos for pos, job in enumerate(ordered) if job.tenant == "small"
        ]
        assert max(positions) <= 6, positions
        # FIFO, by contrast, starves small behind every big job.
        fifo = FifoScheduler().order(make_jobs(spec), seed=1)
        fifo_positions = [
            pos for pos, job in enumerate(fifo) if job.tenant == "small"
        ]
        assert min(fifo_positions) == 30

    def test_edf_within_tenant(self):
        spec = [
            ("uni", 10.0, None),
            ("uni", 10.0, 50.0),
            ("uni", 10.0, 20.0),
        ]
        ordered = FairShareScheduler().order(make_jobs(spec), seed=0)
        assert [j.job_id for j in ordered] == [2, 1, 0]

    def test_deadline_aware_beats_fifo_on_misses(self):
        # Three long no-deadline jobs submitted before three short
        # tight-deadline ones: FIFO runs the longs first and misses
        # every deadline; EDF runs the shorts first and misses none.
        spec = (
            [("uni", 100.0, None)] * 3
            + [("uni", 10.0, 40.0), ("uni", 10.0, 50.0), ("uni", 10.0, 60.0)]
        )
        fifo = FifoScheduler().order(make_jobs(spec), seed=0)
        fifo_sim = evaluate_schedule(fifo, workers=1)
        fair = FairShareScheduler().order(make_jobs(spec), seed=0)
        fair_sim = evaluate_schedule(fair, workers=1)
        assert fifo_sim.deadline_misses == 3
        assert fair_sim.deadline_misses == 0
        assert fair_sim.deadline_misses < fifo_sim.deadline_misses

    def test_weights_shift_share(self):
        spec = [("a", 10.0, None)] * 4 + [("b", 10.0, None)] * 4
        ordered = FairShareScheduler(weights={"a": 3.0}).order(
            make_jobs(spec), seed=0
        )
        # Tenant a's triple weight front-loads its jobs.
        first_four = [job.tenant for job in ordered[:4]]
        assert first_four.count("a") >= 3

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            FairShareScheduler(weights={"a": 0.0})


class TestEvaluateSchedule:
    def test_list_scheduling_across_workers(self):
        jobs = make_jobs([("u", 10.0, None)] * 4)
        sim = evaluate_schedule(jobs, workers=2)
        assert sim.makespan_min == 20.0
        assert [j.sim_start_min for j in jobs] == [0.0, 0.0, 10.0, 10.0]

    def test_cache_hits_billed_at_hit_cost(self):
        jobs = make_jobs([("u", 10.0, None)] * 3)
        jobs[1].cache_hit = True
        sim = evaluate_schedule(jobs, workers=1, cache_hit_minutes=0.5)
        assert jobs[1].sim_finish_min - jobs[1].sim_start_min == 0.5
        assert sim.makespan_min == 20.5

    def test_p95_nearest_rank(self):
        assert nearest_rank_p95([]) == 0.0
        assert nearest_rank_p95([5.0]) == 5.0
        waits = [float(v) for v in range(1, 21)]
        assert nearest_rank_p95(waits) == 19.0

    def test_per_tenant_rows(self):
        jobs = make_jobs([("a", 10.0, None), ("b", 20.0, None)])
        sim = evaluate_schedule(jobs, workers=1)
        assert sim.per_tenant["a"]["jobs"] == 1
        assert sim.per_tenant["b"]["service_min"] == 20.0

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            evaluate_schedule([], workers=0)


# -- engine + executor ------------------------------------------------------


class TestCampaignEngine:
    def test_duplicate_submissions_hit_the_cache(self):
        campaign = build_campaign(copies=4)
        report = campaign.run()
        assert report.jobs == 8
        assert report.unique_designs == 2
        assert report.cache_misses == 2
        assert report.cache_hits == 6
        assert report.completed == 8
        assert report.hit_rate == 0.75

    def test_same_seed_reproduces_the_deterministic_half(self):
        first = build_campaign(copies=3, seed=11).run()
        second = build_campaign(copies=3, seed=11).run()
        a, b = first.as_dict(), second.as_dict()
        for volatile in ("elapsed_s", "throughput_jobs_per_s"):
            a.pop(volatile), b.pop(volatile)
        assert a == b
        assert first.render() == second.render()

    def test_serial_and_pool_results_are_byte_identical(self):
        serial = build_campaign(copies=3, workers=0, seed=5)
        serial_report = serial.run()
        pooled = build_campaign(copies=3, workers=2, seed=5)
        pooled_report = pooled.run()
        key = lambda j: j.job_id
        serial_sigs = [
            result_signature(j.result)
            for j in sorted(serial.queue.jobs(), key=key)
        ]
        pooled_sigs = [
            result_signature(j.result)
            for j in sorted(pooled.queue.jobs(), key=key)
        ]
        assert serial_sigs == pooled_sigs
        assert serial_report.cache_hits == pooled_report.cache_hits
        assert serial_report.cache_misses == pooled_report.cache_misses

    def test_pool_gds_bytes_match_serial(self):
        serial = build_campaign(copies=1, workers=0)
        serial.run()
        pooled = build_campaign(copies=1, workers=2)
        pooled.run()
        for a, b in zip(serial.queue.jobs(), pooled.queue.jobs()):
            assert a.result.gds_bytes == b.result.gds_bytes

    def test_failed_jobs_are_recorded_not_cached(self):
        campaign = Campaign(seed=1)
        for _ in range(2):
            campaign.submit(
                "uni0", counter_module(), "edu130",
                options=FlowOptions(
                    inject=FaultInjector("synthesis", times=5)
                ),
            )
        report = campaign.run()
        assert report.failed == 2
        assert report.cache_misses == 2  # a failure is never memoized
        assert all(
            j.status == "failed" and j.error
            for j in campaign.queue.jobs()
        )

    def test_shared_cache_spans_campaigns(self):
        cache = MemoryResultCache()
        build_campaign(copies=2, cache=cache).run()
        second = build_campaign(copies=2, cache=cache)
        report = second.run()
        assert report.cache_hits == report.jobs  # warm from campaign one

    def test_metrics_flow_through_the_registry(self):
        metrics = MetricsRegistry()
        build_campaign(copies=2, metrics=metrics).run()
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["campaign.jobs"] == 4
        assert snapshot["counters"]["campaign.cache.hits"] == 2
        assert snapshot["counters"]["campaign.cache.misses"] == 2
        assert snapshot["gauges"]["campaign.cache_hit_rate"]["value"] == 0.5
        assert snapshot["histograms"]["campaign.queue_wait_min"]["count"] == 4

    def test_empty_campaign_rejected(self):
        with pytest.raises(CampaignError):
            Campaign().run()

    def test_options_threaded_through_unchanged(self):
        campaign = Campaign()
        options = FlowOptions(clock_period_ps=4_200.0, seed=3)
        campaign.submit("uni0", counter_module(), "edu130", options=options)
        campaign.run()
        job = campaign.queue.jobs()[0]
        assert job.result.clock_period_ps == 4_200.0
        assert job.options is options


# -- hub integration --------------------------------------------------------


def enrolled_hub(tier=AccessTier.INTERMEDIATE) -> EnablementHub:
    hub = EnablementHub()
    for name in ("alice", "bob"):
        hub.enroll(User(name, "tu-kaiserslautern"), tier)
    return hub


class TestHubCampaign:
    def test_policy_checked_before_any_execution(self):
        hub = enrolled_hub(tier=AccessTier.BEGINNER)
        requests = [
            CampaignRequest("alice", counter_module(), "edu130"),
        ]
        with pytest.raises(HubError):
            hub.run_campaign(requests)  # beginners stop at edu180
        assert hub.jobs == []
        assert len(hub.cloud.jobs()) == 0

    def test_unenrolled_user_rejected(self):
        hub = enrolled_hub()
        with pytest.raises(HubError):
            hub.run_campaign(
                [CampaignRequest("mallory", counter_module(), "edu130")]
            )

    def test_campaign_records_and_cloud_billing(self):
        hub = enrolled_hub()
        requests = [
            CampaignRequest("alice", counter_module(), "edu130"),
            CampaignRequest("bob", counter_module(), "edu130"),
            CampaignRequest("alice", gray_module(), "edu130"),
        ]
        report, records = hub.run_campaign(requests, seed=3)
        assert report.completed == 3
        assert report.cache_hits == 1  # the duplicate counter
        assert len(records) == 3
        assert len(hub.jobs) == 3
        assert all(r.result is not None for r in records)
        stats = hub.cloud.run()
        assert stats.jobs == 3
        assert set(stats.by_user) == {"alice", "bob"}
        assert stats.by_user["alice"]["jobs"] == 2

    def test_hub_cache_is_cross_campaign(self):
        hub = enrolled_hub()
        request = [CampaignRequest("alice", counter_module(), "edu130")]
        hub.run_campaign(request)
        report, records = hub.run_campaign(request)
        assert report.cache_hits == 1
        assert records[0].attempts == 0  # served from cache, no flow run

    def test_empty_campaign_rejected(self):
        with pytest.raises(HubError):
            enrolled_hub().run_campaign([])


# -- CLI --------------------------------------------------------------------


class TestCampaignCli:
    def run_cli(self, capsys, argv):
        from repro.cli import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out

    def test_deterministic_stdout(self, capsys):
        argv = ["campaign", "--designs", "12", "--tenants", "3",
                "--seed", "7"]
        code_a, out_a = self.run_cli(capsys, argv)
        code_b, out_b = self.run_cli(capsys, argv)
        assert code_a == code_b == 0
        assert out_a == out_b
        assert "hit_rate=" in out_a

    def test_json_report_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "campaign.json"
        code, _ = self.run_cli(
            capsys,
            ["campaign", "--designs", "6", "--seed", "3",
             "--json", str(path)],
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert data["jobs"] == 6
        assert 0.0 <= data["cache_hit_rate"] <= 1.0
        assert "p95_wait_min" in data["sim"]

    def test_flag_validation(self, capsys):
        code, _ = self.run_cli(capsys, ["campaign", "--designs", "0"])
        assert code == 2
