"""Property-based tests (hypothesis) for the core invariants.

These pin down the contracts everything else relies on:

* lowering preserves IR semantics for arbitrary expression trees;
* optimization and technology mapping preserve netlist semantics;
* the GDSII codec round-trips arbitrary libraries;
* geometry predicates are symmetric/consistent;
* the cost model is monotone and invertible;
* the stack-VM compiler agrees with Python evaluation;
* the FIFO obeys a queue model under arbitrary operation sequences.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import affordable_node_nm, design_cost_usd
from repro.hdl.ir import (
    BinOp,
    Cat,
    Const,
    Module,
    Mux,
    Ref,
    Signal,
    Slice,
    UnaryOp,
    eval_expr,
)
from repro.layout import (
    GdsLibrary,
    GdsSRef,
    GdsStruct,
    GdsText,
    Rect,
    read_gds,
    write_gds,
)
from repro.layout.gds import _parse_real8, _real8
from repro.pdk import get_pdk
from repro.sim import Simulator
from repro.swstack import StackVm, compile_source
from repro.synth import GateSimulator, check_equivalence, lower, optimize, tech_map

# -- expression-tree strategy -----------------------------------------------

_BIN_OPS = ["add", "sub", "mul", "and", "or", "xor", "eq", "lt", "ge"]
_UN_OPS = ["not", "neg", "rxor", "ror", "rand"]


def _expr_strategy(signals: list[Signal]):
    base = st.one_of(
        st.sampled_from(signals).map(Ref),
        st.integers(0, 255).map(lambda v: Const(v, 8)),
        st.integers(0, 15).map(lambda v: Const(v, 4)),
    )

    def extend(children):
        unary = st.builds(
            UnaryOp, st.sampled_from(_UN_OPS), children
        )
        binary = st.builds(
            BinOp, st.sampled_from(_BIN_OPS), children, children
        )
        mux = st.builds(
            lambda s, t, f: Mux(
                s if s.width == 1 else Slice(s, 0, 0), t, f
            ),
            children, children, children,
        )
        cat = st.builds(lambda a, b: Cat([a, b]), children, children)
        sliced = children.map(
            lambda e: Slice(e, min(2, e.width - 1), 0)
        )
        return st.one_of(unary, binary, mux, cat, sliced)

    return st.recursive(base, extend, max_leaves=12)


def _module_for(expr, signals: list[Signal]) -> Module:
    module = Module("prop")
    module.inputs = list(signals)
    width = min(expr.width, 24)
    out = module.add_output("y", width)
    if expr.width > width:
        expr = Slice(expr, width - 1, 0)
    module.assign(out, expr)
    return module


_SIGNALS = [Signal("a", 8), Signal("b", 4), Signal("c", 1)]


class TestLoweringSemantics:
    @given(
        expr=_expr_strategy(_SIGNALS),
        values=st.tuples(
            st.integers(0, 255), st.integers(0, 15), st.integers(0, 1)
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_lowered_netlist_matches_eval(self, expr, values):
        module = _module_for(expr, _SIGNALS)
        env = dict(zip(_SIGNALS, values))
        want = eval_expr(module.assigns[module.outputs[0]], env)

        netlist = lower(module)
        sim = GateSimulator(netlist)
        for sig, value in env.items():
            sim.set(sig.name, value)
        assert sim.get("y") == want

    @given(
        expr=_expr_strategy(_SIGNALS),
        values=st.tuples(
            st.integers(0, 255), st.integers(0, 15), st.integers(0, 1)
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_optimizer_preserves_semantics(self, expr, values):
        module = _module_for(expr, _SIGNALS)
        env = dict(zip(_SIGNALS, values))
        want = eval_expr(module.assigns[module.outputs[0]], env)

        optimized, _ = optimize(lower(module))
        sim = GateSimulator(optimized)
        for sig, value in env.items():
            sim.set(sig.name, value)
        assert sim.get("y") == want

    @given(expr=_expr_strategy(_SIGNALS))
    @settings(max_examples=40, deadline=None)
    def test_mapping_preserves_semantics(self, expr):
        module = _module_for(expr, _SIGNALS)
        optimized, _ = optimize(lower(module))
        library = get_pdk("edu130").library
        mapped, _ = tech_map(optimized, library)
        result = check_equivalence(module, mapped, cycles=8, seed=1)
        assert result.passed, result.mismatches[:2]

    @given(expr=_expr_strategy(_SIGNALS))
    @settings(max_examples=40, deadline=None)
    def test_rtl_simulator_matches_eval(self, expr):
        module = _module_for(expr, _SIGNALS)
        sim = Simulator(module)
        values = {"a": 170, "b": 9, "c": 1}
        for name, value in values.items():
            sim.set(name, value)
        env = {sig: values[sig.name] for sig in _SIGNALS}
        assert sim.get("y") == eval_expr(
            module.assigns[module.outputs[0]], env
        )


class TestGdsRoundTrip:
    rects = st.tuples(
        st.integers(0, 60), st.integers(0, 6),
        st.floats(0.0, 50.0), st.floats(0.0, 50.0),
        st.floats(0.01, 20.0), st.floats(0.01, 20.0),
    )

    @given(
        name=st.text(
            alphabet=st.characters(min_codepoint=65, max_codepoint=90),
            min_size=1, max_size=12,
        ),
        rect_list=st.lists(rects, max_size=8),
        refs=st.lists(
            st.tuples(st.integers(-10_000, 10_000), st.integers(-10_000, 10_000)),
            max_size=4,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, name, rect_list, refs):
        library = GdsLibrary(name)
        cell = library.add(GdsStruct("CELL"))
        for layer, dt, x, y, w, h in rect_list:
            cell.add_rect_um(layer, dt, x, y, x + w, y + h)
        top = library.add(GdsStruct("TOP"))
        for x, y in refs:
            top.srefs.append(GdsSRef("CELL", (x, y)))
        top.texts.append(GdsText(60, "pin", (0, 0)))

        parsed = read_gds(write_gds(library))
        assert parsed.name == name
        assert len(parsed.struct("CELL").boundaries) == len(rect_list)
        assert [s.position for s in parsed.struct("TOP").srefs] == refs
        for original, round_tripped in zip(
            cell.boundaries, parsed.struct("CELL").boundaries
        ):
            assert round_tripped.layer == original.layer
            assert round_tripped.points == original.points

    @given(value=st.floats(min_value=1e-12, max_value=1e12))
    @settings(max_examples=200)
    def test_real8_roundtrip(self, value):
        # GDSII real8 carries 56 mantissa bits (more than a double's 52),
        # but base-16 normalization can waste up to 3 of them, so require
        # agreement to ~2^-49 relative precision.
        parsed = _parse_real8(_real8(value))
        assert math.isclose(parsed, value, rel_tol=2**-49)

    @given(value=st.floats(min_value=-1e9, max_value=-1e-9))
    @settings(max_examples=50)
    def test_real8_negative_values(self, value):
        parsed = _parse_real8(_real8(value))
        assert parsed < 0
        assert math.isclose(parsed, value, rel_tol=2**-49)


class TestGeometryProperties:
    boxes = st.tuples(
        st.floats(-100, 100), st.floats(-100, 100),
        st.floats(0, 50), st.floats(0, 50),
    ).map(lambda t: Rect(t[0], t[1], t[0] + t[2], t[1] + t[3]))

    @given(a=boxes, b=boxes)
    @settings(max_examples=200)
    def test_distance_symmetric(self, a, b):
        assert a.distance(b) == b.distance(a)

    @given(a=boxes, b=boxes)
    @settings(max_examples=200)
    def test_intersection_implies_zero_distance(self, a, b):
        if a.intersects(b):
            assert a.distance(b) == 0.0

    @given(a=boxes, margin=st.floats(0, 10))
    @settings(max_examples=100)
    def test_grown_contains_original(self, a, margin):
        grown = a.grown(margin)
        assert grown.x0 <= a.x0 and grown.y0 <= a.y0
        assert grown.x1 >= a.x1 and grown.y1 >= a.y1

    @given(a=boxes, b=boxes)
    @settings(max_examples=100)
    def test_union_bbox_contains_both(self, a, b):
        u = a.union_bbox(b)
        for rect in (a, b):
            assert u.x0 <= rect.x0 and u.y1 >= rect.y1


class TestCostModelProperties:
    @given(f1=st.floats(2.0, 180.0), f2=st.floats(2.0, 180.0))
    @settings(max_examples=200)
    def test_monotone(self, f1, f2):
        if f1 < f2:
            assert design_cost_usd(f1) >= design_cost_usd(f2)

    @given(feature=st.floats(2.0, 180.0))
    @settings(max_examples=100)
    def test_inverse(self, feature):
        recovered = affordable_node_nm(design_cost_usd(feature))
        assert abs(recovered - feature) / feature < 1e-6


class TestVmAgainstPython:
    @given(
        a=st.integers(0, 1000), b=st.integers(1, 1000),
        c=st.integers(0, 1000),
    )
    @settings(max_examples=150)
    def test_expression_agreement(self, a, b, c):
        source = "y = (a + b) * c - (a ^ c) + b // 3 + (c % 7)"
        vm = StackVm()
        vm.variables.update({"a": a, "b": b, "c": c})
        result = vm.run(compile_source(source))
        assert result["y"] == (a + b) * c - (a ^ c) + b // 3 + (c % 7)


class TestFifoModel:
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.booleans(), st.integers(0, 255)),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fifo_matches_queue(self, ops):
        from repro.ip import make_fifo

        ip = make_fifo(width=8, depth=4)
        sim = Simulator(ip.module)
        queue: list[int] = []
        for push, pop, data in ops:
            sim.set("push", int(push))
            sim.set("pop", int(pop))
            sim.set("wdata", data)
            # Check flags before the edge.
            assert sim.get("full") == (1 if len(queue) == 4 else 0)
            assert sim.get("empty") == (1 if not queue else 0)
            assert sim.get("count") == len(queue)
            if queue:
                assert sim.get("rdata") == queue[0]
            will_push = push and len(queue) < 4
            will_pop = pop and queue
            if will_pop:
                queue.pop(0)
            if will_push:
                queue.append(data)
            sim.step()
