"""Unit tests for the word-level RTL IR."""

import pytest

from repro.hdl.ir import (
    BinOp,
    Cat,
    Const,
    HdlError,
    Module,
    Mux,
    Ref,
    Signal,
    Slice,
    UnaryOp,
    eval_expr,
)


class TestSignal:
    def test_width_and_mask(self):
        sig = Signal("data", 8)
        assert sig.width == 8
        assert sig.mask == 0xFF

    def test_zero_width_rejected(self):
        with pytest.raises(HdlError):
            Signal("bad", 0)

    def test_invalid_name_rejected(self):
        with pytest.raises(HdlError):
            Signal("has space", 1)

    def test_identity_hashing(self):
        a = Signal("x", 1)
        b = Signal("x", 1)
        assert a != b
        assert len({a, b}) == 2


class TestConst:
    def test_masking_of_negative(self):
        assert Const(-1, 4).value == 0xF

    def test_overflow_rejected(self):
        with pytest.raises(HdlError):
            Const(16, 4)

    def test_fits_exactly(self):
        assert Const(15, 4).value == 15


class TestWidthRules:
    def test_add_takes_max_width(self):
        expr = BinOp("add", Const(0, 8), Const(0, 4))
        assert expr.width == 8

    def test_mul_sums_widths(self):
        expr = BinOp("mul", Const(0, 8), Const(0, 4))
        assert expr.width == 12

    def test_comparison_is_one_bit(self):
        for op in ("eq", "ne", "lt", "le", "gt", "ge"):
            assert BinOp(op, Const(0, 8), Const(0, 8)).width == 1

    def test_shift_keeps_lhs_width(self):
        assert BinOp("shl", Const(0, 8), Const(0, 3)).width == 8

    def test_cat_sums_widths(self):
        assert Cat([Const(0, 3), Const(0, 5)]).width == 8

    def test_slice_width(self):
        assert Slice(Const(0, 8), 5, 2).width == 4

    def test_slice_bounds_checked(self):
        with pytest.raises(HdlError):
            Slice(Const(0, 8), 8, 0)
        with pytest.raises(HdlError):
            Slice(Const(0, 8), 2, 5)

    def test_reduction_is_one_bit(self):
        assert UnaryOp("rxor", Const(0, 8)).width == 1

    def test_unknown_ops_rejected(self):
        with pytest.raises(HdlError):
            BinOp("pow", Const(0, 1), Const(0, 1))
        with pytest.raises(HdlError):
            UnaryOp("abs", Const(0, 1))

    def test_mux_needs_one_bit_select(self):
        with pytest.raises(HdlError):
            Mux(Const(0, 2), Const(0, 1), Const(0, 1))


class TestEvalExpr:
    def test_add_wraps(self):
        expr = BinOp("add", Const(255, 8), Const(1, 8))
        assert eval_expr(expr, {}) == 0

    def test_sub_wraps(self):
        expr = BinOp("sub", Const(0, 8), Const(1, 8))
        assert eval_expr(expr, {}) == 255

    def test_mul_full_width(self):
        expr = BinOp("mul", Const(255, 8), Const(255, 8))
        assert eval_expr(expr, {}) == 255 * 255

    def test_not(self):
        assert eval_expr(UnaryOp("not", Const(0b1010, 4)), {}) == 0b0101

    def test_neg(self):
        assert eval_expr(UnaryOp("neg", Const(1, 4)), {}) == 15

    def test_reductions(self):
        assert eval_expr(UnaryOp("rand", Const(0xF, 4)), {}) == 1
        assert eval_expr(UnaryOp("rand", Const(0xE, 4)), {}) == 0
        assert eval_expr(UnaryOp("ror", Const(0, 4)), {}) == 0
        assert eval_expr(UnaryOp("ror", Const(2, 4)), {}) == 1
        assert eval_expr(UnaryOp("rxor", Const(0b0111, 4)), {}) == 1

    def test_shift_overflow_is_zero(self):
        expr = BinOp("shl", Const(1, 4), Const(9, 4))
        assert eval_expr(expr, {}) == 0
        expr = BinOp("shr", Const(8, 4), Const(9, 4))
        assert eval_expr(expr, {}) == 0

    def test_cat_msb_first(self):
        expr = Cat([Const(0b10, 2), Const(0b01, 2)])
        assert eval_expr(expr, {}) == 0b1001

    def test_slice(self):
        expr = Slice(Const(0b11010, 5), 3, 1)
        assert eval_expr(expr, {}) == 0b101

    def test_mux(self):
        m = Mux(Const(1, 1), Const(5, 4), Const(9, 4))
        assert eval_expr(m, {}) == 5
        m = Mux(Const(0, 1), Const(5, 4), Const(9, 4))
        assert eval_expr(m, {}) == 9

    def test_ref_masks_value(self):
        sig = Signal("s", 4)
        assert eval_expr(Ref(sig), {sig: 0xFF}) == 0xF

    def test_comparisons(self):
        def check(op, a, b, want):
            assert eval_expr(BinOp(op, Const(a, 8), Const(b, 8)), {}) == want

        check("eq", 3, 3, 1)
        check("ne", 3, 4, 1)
        check("lt", 3, 4, 1)
        check("le", 4, 4, 1)
        check("gt", 5, 4, 1)
        check("ge", 4, 5, 0)


class TestModule:
    def make_passthrough(self):
        mod = Module("pass")
        a = mod.add_input("a", 4)
        y = mod.add_output("y", 4)
        mod.assign(y, Ref(a))
        return mod

    def test_validate_ok(self):
        self.make_passthrough().validate()

    def test_double_assign_rejected(self):
        mod = Module("m")
        a = mod.add_input("a", 1)
        y = mod.add_output("y", 1)
        mod.assign(y, Ref(a))
        with pytest.raises(HdlError):
            mod.assign(y, Ref(a))

    def test_undriven_output_rejected(self):
        mod = Module("m")
        mod.add_input("a", 1)
        mod.add_output("y", 1)
        with pytest.raises(HdlError):
            mod.validate()

    def test_driven_input_rejected(self):
        mod = Module("m")
        a = mod.add_input("a", 1)
        b = mod.add_input("b", 1)
        mod.assign(a, Ref(b))
        with pytest.raises(HdlError):
            mod.validate()

    def test_width_overflow_on_assign_rejected(self):
        mod = Module("m")
        a = mod.add_input("a", 8)
        y = mod.add_output("y", 4)
        with pytest.raises(HdlError):
            mod.assign(y, Ref(a))

    def test_comb_loop_detected(self):
        mod = Module("m")
        mod.add_input("a", 1)
        x = mod.add_wire("x", 1)
        y = mod.add_output("y", 1)
        mod.assign(x, Ref(y))
        mod.assign(y, Ref(x))
        with pytest.raises(HdlError, match="loop"):
            mod.validate()

    def test_register_breaks_loop(self):
        mod = Module("m")
        reg = mod.add_register("q", 4)
        from repro.hdl.ir import BinOp as B, Const as C

        reg.next = B("add", Ref(reg.signal), C(1, 4))
        y = mod.add_output("y", 4)
        mod.assign(y, Ref(reg.signal))
        mod.validate()

    def test_duplicate_names_rejected(self):
        mod = Module("m")
        mod.add_input("a", 1)
        y = mod.add_output("a", 1)
        mod.assign(y, Const(0, 1))
        with pytest.raises(HdlError, match="duplicate"):
            mod.validate()

    def test_foreign_signal_rejected(self):
        mod = Module("m")
        y = mod.add_output("y", 1)
        foreign = Signal("x", 1)
        mod.assign(y, Ref(foreign))
        with pytest.raises(HdlError, match="foreign"):
            mod.validate()

    def test_stats(self):
        mod = self.make_passthrough()
        stats = mod.stats()
        assert stats["inputs"] == 1
        assert stats["outputs"] == 1
        assert stats["assigns"] == 1

    def test_signal_by_name(self):
        mod = self.make_passthrough()
        assert mod.signal_by_name("a").width == 4
        with pytest.raises(KeyError):
            mod.signal_by_name("zzz")


class TestInstances:
    def make_child(self):
        child = Module("child")
        a = child.add_input("a", 4)
        y = child.add_output("y", 4)
        child.assign(y, UnaryOp("not", Ref(a)))
        return child

    def test_instance_validates(self):
        child = self.make_child()
        top = Module("top")
        a = top.add_input("a", 4)
        y = top.add_output("y", 4)
        top.add_instance("u0", child, {"a": a, "y": y})
        top.validate()

    def test_unconnected_port_rejected(self):
        child = self.make_child()
        top = Module("top")
        a = top.add_input("a", 4)
        top.add_output("y", 4)
        top.add_instance("u0", child, {"a": a})
        with pytest.raises(HdlError, match="no driver|unconnected"):
            top.validate()

    def test_width_mismatch_rejected(self):
        child = self.make_child()
        top = Module("top")
        a = top.add_input("a", 8)
        y = top.add_output("y", 4)
        top.add_instance("u0", child, {"a": a, "y": y})
        with pytest.raises(HdlError, match="width"):
            top.validate()

    def test_unknown_port_rejected(self):
        child = self.make_child()
        top = Module("top")
        a = top.add_input("a", 4)
        y = top.add_output("y", 4)
        top.add_instance("u0", child, {"a": a, "y": y, "zz": a})
        with pytest.raises(HdlError, match="no port"):
            top.validate()


class TestValidateEdgeCases:
    """Corner cases of structural validation the linter leans on."""

    def test_slice_out_of_range_raises_at_construction(self):
        a = Signal("a", 8)
        with pytest.raises(HdlError, match="out of range"):
            Slice(Ref(a), 8, 0)
        with pytest.raises(HdlError, match="out of range"):
            Slice(Ref(a), 3, 4)  # hi < lo
        with pytest.raises(HdlError, match="out of range"):
            Slice(Const(0, 4), 4, 2)

    def test_cat_of_zero_parts_raises(self):
        with pytest.raises(HdlError, match="zero parts"):
            Cat([])

    def test_zero_width_const_and_signal_rejected(self):
        with pytest.raises(HdlError, match="width"):
            Const(0, 0)
        with pytest.raises(HdlError):
            Signal("z", 0)

    def test_multi_driver_assign_plus_register(self):
        m = Module("t")
        a = m.add_input("a", 4)
        reg = m.add_register("r", 4)
        m.assign(reg.signal, Ref(a))
        with pytest.raises(HdlError, match="multiple drivers"):
            m.validate()

    def test_multi_driver_wire_vs_output_are_independent(self):
        # Driving a wire and an output of the same width is fine; the
        # multi-driver check is per-signal, not per-name-class.
        m = Module("t")
        a = m.add_input("a", 4)
        w = m.add_wire("w", 4)
        y = m.add_output("y", 4)
        m.assign(w, Ref(a))
        m.assign(y, Ref(w))
        m.validate()

    def test_multi_driver_instance_output_plus_assign(self):
        child = Module("child")
        ca = child.add_input("a", 4)
        cy = child.add_output("y", 4)
        child.assign(cy, Ref(ca))

        top = Module("top")
        a = top.add_input("a", 4)
        y = top.add_output("y", 4)
        top.add_instance("u0", child, {"a": a, "y": y})
        top.assign(y, Ref(a))
        with pytest.raises(HdlError, match="multiple drivers"):
            top.validate()

    def test_drivers_map_reports_driver_objects(self):
        m = Module("t")
        a = m.add_input("a", 4)
        y = m.add_output("y", 4)
        reg = m.add_register("r", 4)
        reg.next = Ref(a)
        m.assign(y, Ref(reg.signal))
        driven = m.drivers()
        assert driven[reg.signal] is reg
        assert isinstance(driven[y], Ref)
        assert a not in driven
