"""Tests for FPGA array placement and the outreach program models."""

import pytest

from repro.analytics import simulate_pipeline
from repro.core.outreach import (
    PROGRAMS,
    best_value_programs,
    portfolio_conversions,
    portfolio_cost,
    portfolio_to_interventions,
)
from repro.fpga import get_device, lut_map
from repro.fpga.place import place_on_array
from repro.hdl import ModuleBuilder
from repro.synth import lower, optimize


@pytest.fixture(scope="module")
def mapped_adder():
    b = ModuleBuilder("adder16")
    a = b.input("a", 16)
    c = b.input("c", 16)
    b.output("y", a + c)
    netlist, _ = optimize(lower(b.build()))
    return netlist, lut_map(netlist, get_device("edu-ice40"))


class TestFpgaPlacement:
    def test_all_luts_placed_distinctly(self, mapped_adder):
        netlist, mapping = mapped_adder
        placement = place_on_array(netlist, mapping)
        assert len(placement.positions) == mapping.luts
        assert len(set(placement.positions.values())) == mapping.luts

    def test_grid_fits(self, mapped_adder):
        netlist, mapping = mapped_adder
        placement = place_on_array(netlist, mapping)
        assert placement.grid * placement.grid >= mapping.luts
        for col, row in placement.positions.values():
            assert 0 <= col < placement.grid
            assert 0 <= row < placement.grid

    def test_swaps_reduce_wirelength(self, mapped_adder):
        netlist, mapping = mapped_adder
        unrefined = place_on_array(netlist, mapping, passes=0)
        refined = place_on_array(netlist, mapping, passes=6)
        assert refined.wirelength <= unrefined.wirelength
        assert refined.swaps_accepted > 0

    def test_channel_width_positive(self, mapped_adder):
        netlist, mapping = mapped_adder
        placement = place_on_array(netlist, mapping)
        assert placement.channel_width >= 1
        report = placement.report()
        assert "x" in report["grid"]


class TestOutreachPrograms:
    def test_catalogue_covers_all_recommendations(self):
        assert {p.recommendation for p in PROGRAMS} == {1, 2, 3}

    def test_localization_widens_reach(self):
        portal = next(p for p in PROGRAMS if p.name == "online_career_portal")
        assert portal.effective_reach(localized=True) > portal.effective_reach(
            localized=False
        )
        assert portal.cost_per_convert(True) < portal.cost_per_convert(False)

    def test_top_performer_focus_shrinks_funnel(self):
        contest = next(p for p in PROGRAMS if p.name == "olympiad_contest")
        assert contest.effective_reach() < contest.students_reached

    def test_portfolio_totals(self):
        names = ["tinytapeout_school", "industry_visit_days"]
        assert portfolio_conversions(names) > 0
        assert portfolio_cost(names) == pytest.approx(210_000.0)
        with pytest.raises(KeyError):
            portfolio_conversions(["chipflix"])

    def test_best_value_excludes_indirect(self):
        best = best_value_programs()
        assert "network_coordination_hub" not in best
        assert len(best) == 3

    def test_interventions_from_portfolio(self):
        names = [p.name for p in PROGRAMS]
        interventions = portfolio_to_interventions(names)
        assert interventions.outreach > 1.0
        assert interventions.campaigns > 1.0
        assert interventions.funding > 1.0

    def test_hub_amplifies(self):
        base = ["tinytapeout_school", "online_career_portal"]
        with_hub = base + ["network_coordination_hub"]
        iv_base = portfolio_to_interventions(base)
        iv_hub = portfolio_to_interventions(with_hub)
        assert iv_hub.outreach > iv_base.outreach
        assert iv_hub.funding > iv_base.funding

    def test_portfolio_improves_pipeline(self):
        names = [p.name for p in PROGRAMS]
        interventions = portfolio_to_interventions(names)
        funded = simulate_pipeline(interventions=interventions)
        baseline = simulate_pipeline()
        assert funded.final_gap < baseline.final_gap
