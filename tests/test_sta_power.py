"""Tests for static timing analysis and power analysis."""

import math

import pytest

from repro.hdl import ModuleBuilder, mux
from repro.pdk import get_pdk
from repro.power import PowerAnalyzer
from repro.power.engine import _output_probability
from repro.sta import TimingAnalyzer
from repro.synth import synthesize


@pytest.fixture(scope="module")
def pdk():
    return get_pdk("edu130")


@pytest.fixture(scope="module")
def counter_mapped(pdk):
    b = ModuleBuilder("counter")
    en = b.input("en", 1)
    count = b.register("count", 8)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    return synthesize(b.build(), pdk.library).mapped


@pytest.fixture(scope="module")
def adder_mapped(pdk):
    b = ModuleBuilder("adder16")
    a = b.input("a", 16)
    c = b.input("c", 16)
    b.output("y", a + c)
    return synthesize(b.build(), pdk.library).mapped


class TestTimingAnalyzer:
    def test_loose_clock_meets(self, counter_mapped, pdk):
        sta = TimingAnalyzer(counter_mapped, pdk.node)
        report = sta.analyze(clock_period_ps=100_000.0)
        assert report.met
        assert report.wns_ps > 0
        assert report.tns_ps == 0

    def test_tight_clock_violates(self, counter_mapped, pdk):
        sta = TimingAnalyzer(counter_mapped, pdk.node)
        report = sta.analyze(clock_period_ps=1.0)
        assert not report.met
        assert report.wns_ps < 0
        assert report.tns_ps < 0

    def test_minimum_period_consistent(self, counter_mapped, pdk):
        sta = TimingAnalyzer(counter_mapped, pdk.node)
        tmin = sta.minimum_period_ps()
        assert tmin > 0
        assert sta.analyze(tmin + 1.0).wns_ps >= 0
        assert sta.analyze(tmin - 10.0).wns_ps < 0

    def test_critical_path_nonempty_and_monotone(self, adder_mapped, pdk):
        sta = TimingAnalyzer(adder_mapped, pdk.node)
        report = sta.analyze(1_000.0)
        path = report.critical_path
        assert len(path) >= 2
        arrivals = [p.arrival_ps for p in path]
        assert arrivals == sorted(arrivals)

    def test_wider_adder_is_slower(self, pdk):
        def min_period(width):
            b = ModuleBuilder(f"add{width}")
            a = b.input("a", width)
            c = b.input("c", width)
            b.output("y", a + c)
            mapped = synthesize(b.build(), pdk.library).mapped
            return TimingAnalyzer(mapped, pdk.node).minimum_period_ps()

        assert min_period(16) > min_period(4)

    def test_smaller_node_is_faster(self, adder_mapped):
        # Same RTL mapped on each node: delay tracks feature size.
        b = ModuleBuilder("add8")
        a = b.input("a", 8)
        c = b.input("c", 8)
        b.output("y", a + c)
        module = b.build()
        periods = {}
        for name in ("edu180", "edu130", "edu045"):
            pdk = get_pdk(name)
            mapped = synthesize(module, pdk.library).mapped
            periods[name] = TimingAnalyzer(mapped, pdk.node).minimum_period_ps()
        assert periods["edu045"] < periods["edu130"] < periods["edu180"]

    def test_skew_shifts_slack(self, counter_mapped, pdk):
        sta = TimingAnalyzer(counter_mapped, pdk.node)
        base = sta.analyze(2_000.0)
        # Giving every capture flop extra useful skew loosens setup.
        names = {c.name: 50.0 for c in counter_mapped.seq_cells}
        skewed = TimingAnalyzer(counter_mapped, pdk.node, skew_ps=names)
        report = skewed.analyze(2_000.0)
        # Launch also shifts, so slack change is bounded by the skew.
        assert abs(report.wns_ps - base.wns_ps) <= 50.0 + 1e-6

    def test_routed_lengths_slow_the_design(self, adder_mapped, pdk):
        base = TimingAnalyzer(adder_mapped, pdk.node, wire_lengths_um={})
        nets = {n: 500.0 for n in adder_mapped.nets()}
        loaded = TimingAnalyzer(adder_mapped, pdk.node, wire_lengths_um=nets)
        assert loaded.minimum_period_ps() > base.minimum_period_ps()

    def test_fmax_positive(self, counter_mapped, pdk):
        sta = TimingAnalyzer(counter_mapped, pdk.node)
        report = sta.analyze(5_000.0)
        assert 0 < report.fmax_mhz < math.inf
        assert "MET" in report.summary() or "VIOLATED" in report.summary()

    def test_hold_met_with_zero_skew(self, counter_mapped, pdk):
        report = TimingAnalyzer(counter_mapped, pdk.node).analyze(10_000.0)
        assert report.worst_hold_slack_ps >= 0


class TestPowerAnalyzer:
    def test_power_scales_with_frequency(self, adder_mapped, pdk):
        pa = PowerAnalyzer(adder_mapped, pdk.node)
        p100 = pa.analyze(100.0)
        p200 = pa.analyze(200.0)
        assert p200.dynamic_uw == pytest.approx(2 * p100.dynamic_uw, rel=1e-6)
        assert p200.leakage_uw == p100.leakage_uw

    def test_idle_inputs_reduce_dynamic_power(self, adder_mapped, pdk):
        active = PowerAnalyzer(adder_mapped, pdk.node).analyze(100.0)
        quiet = PowerAnalyzer(
            adder_mapped, pdk.node,
            input_probabilities={"a": 0.01, "c": 0.01},
        ).analyze(100.0)
        assert quiet.dynamic_uw < active.dynamic_uw

    def test_leakage_fraction_grows_on_advanced_node(self):
        b = ModuleBuilder("add8")
        a = b.input("a", 8)
        c = b.input("c", 8)
        b.output("y", a + c)
        module = b.build()
        fractions = {}
        for name in ("edu180", "edu045"):
            pdk = get_pdk(name)
            mapped = synthesize(module, pdk.library).mapped
            fractions[name] = PowerAnalyzer(mapped, pdk.node).analyze(100.0).leakage_fraction
        assert fractions["edu045"] > fractions["edu180"]

    def test_report_totals(self, counter_mapped, pdk):
        report = PowerAnalyzer(counter_mapped, pdk.node).analyze(50.0)
        assert report.total_uw == pytest.approx(
            report.dynamic_uw + report.leakage_uw
        )
        assert "uW" in report.summary()

    def test_probabilities_bounded(self, adder_mapped, pdk):
        pa = PowerAnalyzer(adder_mapped, pdk.node)
        for p in pa.signal_probabilities().values():
            assert 0.0 <= p <= 1.0


class TestOutputProbability:
    def test_and_gate(self):
        p = _output_probability(lambda a, b: a & b, [0.5, 0.5])
        assert p == pytest.approx(0.25)

    def test_inverter(self):
        p = _output_probability(lambda a: a ^ 1, [0.3])
        assert p == pytest.approx(0.7)

    def test_constant(self):
        assert _output_probability(lambda: 1, []) == 1.0

    def test_xor_uniform(self):
        p = _output_probability(lambda a, b: a ^ b, [0.5, 0.5])
        assert p == pytest.approx(0.5)
