"""Tests for the IP catalogue: every block verifies against its model."""

import pytest

from repro.ip import (
    VerificationStatus,
    catalogue,
    generate,
    make_fifo,
    make_lfsr,
    make_uart_tx,
    quality_score,
)
from repro.sim import Simulator


class TestCatalogue:
    def test_catalogue_contents(self):
        names = catalogue()
        assert len(names) >= 12
        for expected in ("counter", "fifo", "alu", "uart_tx", "fir"):
            assert expected in names

    def test_unknown_ip_rejected(self):
        with pytest.raises(KeyError):
            generate("pcie_phy")

    @pytest.mark.parametrize("name", [
        "counter", "shift_register", "gray_counter", "lfsr",
        "priority_encoder", "seven_seg", "alu", "pwm", "multiplier",
        "fifo", "fir", "uart_tx",
    ])
    def test_every_ip_verifies_randomly(self, name):
        ip = generate(name)
        result = ip.verify(cycles=300)
        assert result.passed, f"{name}: {result.mismatches[:3]}"

    @pytest.mark.parametrize("name", catalogue())
    def test_quality_scores_high(self, name):
        # Recommendation 5: catalogue IP must ship with full collateral.
        ip = generate(name)
        assert quality_score(ip) >= 0.8

    def test_quality_score_penalizes_missing_collateral(self):
        ip = generate("counter")
        ip.collateral.integration_notes = ""
        ip.collateral.synthesis_hints = {}
        ip.verification = VerificationStatus.NONE
        assert quality_score(ip) <= 0.5

    def test_rtl_collateral_emission(self):
        ip = generate("counter", width=4)
        rtl = ip.rtl()
        assert "module counter4" in rtl


class TestParameterization:
    def test_counter_step(self):
        ip = generate("counter", width=8, step=3)
        sim = Simulator(ip.module)
        sim.set("en", 1)
        sim.set("load", 0)
        sim.set("value", 0)
        sim.step(4)
        assert sim.get("q") == 12

    def test_fifo_depth_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            make_fifo(depth=3)

    def test_lfsr_unsupported_width(self):
        with pytest.raises(ValueError):
            make_lfsr(width=5)

    def test_lfsr_is_maximal_length(self):
        ip = make_lfsr(width=8)
        sim = Simulator(ip.module)
        sim.set("en", 1)
        seen = set()
        for _ in range(255):
            seen.add(sim.get("q"))
            sim.step()
        assert len(seen) == 255
        assert 0 not in seen

    def test_uart_divisor_validated(self):
        with pytest.raises(ValueError):
            make_uart_tx(divisor=1)


class TestFifoBehaviour:
    def test_fill_and_drain(self):
        ip = make_fifo(width=8, depth=4)
        sim = Simulator(ip.module)
        sim.set("pop", 0)
        for value in (10, 20, 30, 40):
            sim.set("push", 1)
            sim.set("wdata", value)
            sim.step()
        sim.set("push", 0)
        assert sim.get("full") == 1
        assert sim.get("count") == 4
        drained = []
        for _ in range(4):
            drained.append(sim.get("rdata"))
            sim.set("pop", 1)
            sim.step()
        sim.set("pop", 0)
        assert drained == [10, 20, 30, 40]
        assert sim.get("empty") == 1

    def test_push_when_full_is_ignored(self):
        ip = make_fifo(width=8, depth=4)
        sim = Simulator(ip.module)
        sim.set("pop", 0)
        sim.set("push", 1)
        for value in range(6):
            sim.set("wdata", 100 + value)
            sim.step()
        sim.set("push", 0)
        assert sim.get("count") == 4
        assert sim.get("rdata") == 100

    def test_simultaneous_push_pop_keeps_count(self):
        ip = make_fifo(width=8, depth=4)
        sim = Simulator(ip.module)
        sim.set("push", 1)
        sim.set("pop", 0)
        sim.set("wdata", 1)
        sim.step()
        sim.set("wdata", 2)
        sim.set("pop", 1)
        sim.step()
        assert sim.get("count") == 1
        assert sim.get("rdata") == 2


class TestUartFraming:
    def test_transmits_8n1_frame(self):
        divisor = 2
        ip = make_uart_tx(divisor=divisor)
        sim = Simulator(ip.module)
        assert sim.get("txd") == 1  # idle high
        sim.set("data", 0b01010011)
        sim.set("start", 1)
        sim.step()
        sim.set("start", 0)
        line = []
        while sim.get("busy"):
            line.append(sim.get("txd"))
            sim.step()
        # Sample one bit per baud period.
        bits = line[::divisor]
        assert bits[0] == 0  # start bit
        data_bits = bits[1:9]
        assert data_bits == [1, 1, 0, 0, 1, 0, 1, 0]  # LSB first
        assert bits[9] == 1  # stop bit
        assert sim.get("txd") == 1  # back to idle
