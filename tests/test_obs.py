"""Tests for the observability subsystem (repro.obs) and its flow hooks."""

import json

import pytest

from repro.core import OPEN, CloudPlatform, FlowOptions, FlowStep, run_flow
from repro.hdl import ModuleBuilder, mux
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    aggregate,
    get_tracer,
    load_trace,
    render_timeline,
    render_trace,
    set_tracer,
    use_tracer,
    write_trace,
)
from repro.pdk import get_pdk


def build_counter(width=6):
    b = ModuleBuilder("obs_counter")
    en = b.input("en", 1)
    count = b.register("count", width)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    return b.build()


class TestSpans:
    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                with tracer.span("leaf") as leaf:
                    pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id
        # Completion order: children finish before their parents.
        assert [s.name for s in tracer.spans] == ["leaf", "inner", "outer"]

    def test_timing_monotonic(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                sum(range(1000))
        assert outer.start_s <= inner.start_s <= inner.end_s <= outer.end_s
        assert inner.duration_s >= 0.0
        assert outer.duration_s >= inner.duration_s

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("work", step=1) as span:
            span.set(cells=40, hpwl=1.5)
        assert span.attributes == {"step": 1, "cells": 40, "hpwl": 1.5}

    def test_exception_marks_span_and_finishes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (span,) = tracer.spans
        assert span.attributes["error"] == "RuntimeError"
        assert span.end_s is not None
        assert tracer.current() is None

    def test_injected_clock(self):
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["a"].start_s == 0.0
        assert by_name["b"].duration_s == 1.0  # ticks 1 -> 2

    def test_add_span_explicit_timestamps(self):
        tracer = Tracer()
        parent = tracer.add_span("job", 10.0, 25.0, user="alice")
        child = tracer.add_span("job.run", 15.0, 25.0,
                                parent_id=parent.span_id)
        assert parent.duration_s == 15.0
        assert child.parent_id == parent.span_id

    def test_mark_since_find(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.since(mark)] == ["after"]
        assert tracer.find("after", mark).name == "after"
        assert tracer.find("before", mark) is None


class TestNullTracer:
    def test_noop_span_is_shared_singleton(self):
        assert NULL_TRACER.span("anything", key=1) is NULL_SPAN
        assert NULL_TRACER.span("other") is NULL_SPAN
        with NULL_TRACER.span("x") as span:
            assert span.set(a=1) is span
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.since(NULL_TRACER.mark()) == []
        assert not NULL_TRACER.enabled

    def test_default_tracer_is_noop_and_swappable(self):
        assert get_tracer() is NULL_TRACER
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with get_tracer().span("scoped"):
                pass
        assert get_tracer() is NULL_TRACER
        assert [s.name for s in tracer.spans] == ["scoped"]

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer() is previous


class TestMetrics:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("runs")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_series(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3, at=10.0)
        gauge.set(1, at=12.5)
        state = gauge.state()
        assert state["value"] == 1
        assert state["min"] == 1 and state["max"] == 3
        assert state["series"] == [[10.0, 3.0], [12.5, 1.0]]

    def test_histogram_bucket_edges(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(1.0, 2.0, 5.0))
        # v <= bound lands in that bucket; past the last bound overflows.
        for value in (0.5, 1.0, 1.0001, 2.0, 5.0, 5.0001):
            hist.observe(value)
        state = hist.state()
        assert state["bounds"] == [1.0, 2.0, 5.0]
        assert state["counts"] == [2, 2, 1, 1]
        assert state["count"] == 6
        assert state["mean"] == pytest.approx(sum(
            (0.5, 1.0, 1.0001, 2.0, 5.0, 5.0001)) / 6)

    def test_default_buckets_cover_engine_timescales(self):
        assert DEFAULT_TIME_BUCKETS[0] <= 0.001
        assert DEFAULT_TIME_BUCKETS[-1] >= 60.0

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(7)
        registry.histogram("c").observe(0.01)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 1.0
        assert snap["gauges"]["b"]["value"] == 7
        assert snap["histograms"]["c"]["count"] == 1
        # Snapshot must be plain data: JSON round-trip is the identity.
        assert json.loads(json.dumps(snap)) == snap
        registry.reset()
        assert registry.counter("a").value == 0.0
        assert registry.histogram("c").count == 0


class TestTraceFile:
    def test_jsonl_round_trip_equality(self, tmp_path):
        tracer = Tracer()
        with tracer.span("flow", design="counter"):
            with tracer.span("step.synthesis", gates=64):
                pass
        registry = MetricsRegistry()
        registry.counter("flow.runs").inc()
        path = tmp_path / "trace.jsonl"
        records = write_trace(str(path), tracer, metrics=registry,
                              events=[{"name": "note", "detail": "hi"}])
        assert records == 1 + 2 + 1 + 1  # header + spans + metrics + event

        data = load_trace(str(path))
        assert data.spans == tracer.spans  # dataclass equality
        assert data.metrics == registry.snapshot()
        assert data.events == [{"type": "event", "name": "note",
                                "detail": "hi"}]

    def test_file_is_line_delimited_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        path = tmp_path / "t.jsonl"
        write_trace(str(path), tracer)
        lines = path.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "trace" and header["spans"] == 1
        assert json.loads(lines[1])["name"] == "only"

    def test_corrupt_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "trace", "version": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(str(path))

    def test_render_trace_sections(self, tmp_path):
        tracer = Tracer()
        with tracer.span("flow"):
            with tracer.span("step.placement"):
                pass
        path = tmp_path / "t.jsonl"
        registry = MetricsRegistry()
        registry.counter("flow.runs").inc()
        write_trace(str(path), tracer, metrics=registry)
        text = render_trace(load_trace(str(path)))
        assert "== timeline ==" in text
        assert "== by span (self/cumulative) ==" in text
        assert "== metrics ==" in text
        assert "step.placement" in text


class TestAggregation:
    def test_self_time_excludes_children(self):
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        with tracer.span("parent"):     # 0 .. 3
            with tracer.span("child"):  # 1 .. 2
                pass
        rows = {row.name: row for row in aggregate(tracer.spans)}
        assert rows["parent"].total_s == 3.0
        assert rows["parent"].self_s == 2.0
        assert rows["child"].self_s == 1.0
        # Self times partition the traced wall time.
        assert rows["parent"].self_s + rows["child"].self_s == 3.0

    def test_timeline_indents_children(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        text = render_timeline(tracer.spans)
        lines = text.splitlines()
        assert any(line.endswith("  a") for line in lines)
        assert any(line.endswith("    b") for line in lines)


class TestFlowIntegration:
    @pytest.fixture(scope="class")
    def traced(self):
        tracer = Tracer()
        result = run_flow(build_counter(), get_pdk("edu130"),
                          FlowOptions(preset=OPEN), tracer=tracer)
        return tracer, result

    def test_every_recorded_step_has_a_span(self, traced):
        tracer, result = traced
        names = {span.name for span in tracer.spans}
        for report in result.steps:
            assert f"step.{report.step.value}" in names

    def test_step_runtimes_come_from_spans(self, traced):
        tracer, result = traced
        by_name = {s.name: s for s in tracer.spans}
        for report in result.steps:
            span = by_name[f"step.{report.step.value}"]
            assert report.runtime_s == pytest.approx(span.duration_s,
                                                     abs=1e-6)

    def test_step_spans_do_not_overlap(self, traced):
        tracer, _ = traced
        steps = sorted(
            (s for s in tracer.spans if s.name.startswith("step.")),
            key=lambda s: s.start_s,
        )
        assert len(steps) == 12
        for earlier, later in zip(steps, steps[1:]):
            assert earlier.end_s <= later.start_s + 1e-9

    def test_step_runtimes_sum_to_wall_time(self, traced):
        tracer, result = traced
        flow_span = next(s for s in tracer.spans if s.name == "flow")
        total = sum(report.runtime_s for report in result.steps)
        assert total <= flow_span.duration_s + 1e-6
        # Steps account for nearly all of the flow's wall time.
        assert total >= 0.5 * flow_span.duration_s

    def test_sub_stage_spans_present(self, traced):
        tracer, _ = traced
        names = {span.name for span in tracer.spans}
        assert {"synth.lower", "synth.optimize", "place.global",
                "route.initial", "sta.analyze", "power.analyze",
                "drc.flatten"} <= names

    def test_result_trace_field_matches_tracer(self, traced):
        tracer, result = traced
        assert result.trace == tracer.spans

    def test_untraced_flow_still_reports_runtimes(self):
        result = run_flow(build_counter(), get_pdk("edu130"),
                          FlowOptions(preset=OPEN))
        assert sum(r.runtime_s for r in result.steps) > 0.0
        assert len(result.trace) > 0
        # Nothing leaked into the process-wide (no-op) tracer.
        assert get_tracer() is NULL_TRACER

    def test_flow_ignores_sim_steps(self, traced):
        tracer, result = traced
        recorded = {report.step for report in result.steps}
        assert FlowStep.SPECIFICATION not in recorded
        assert FlowStep.TAPEOUT not in recorded


class TestCloudTracing:
    def test_job_spans_in_simulated_minutes(self):
        tracer = Tracer()
        cloud = CloudPlatform(servers=1, tracer=tracer)
        cloud.submit("alice", duration_min=30.0, submit_min=0.0)
        cloud.submit("bob", duration_min=30.0, submit_min=0.0)
        cloud.run()
        jobs = [s for s in tracer.spans if s.name == "cloud.job"]
        runs = [s for s in tracer.spans if s.name == "cloud.job.run"]
        assert len(jobs) == 2 and len(runs) == 2
        waiting = next(s for s in jobs if s.attributes["user"] == "bob")
        assert waiting.start_s == 0.0 and waiting.end_s == 60.0
        child = next(r for r in runs if r.parent_id == waiting.span_id)
        assert child.start_s == 30.0  # waited behind alice

    def test_queue_and_utilization_gauges(self):
        cloud = CloudPlatform(servers=2)
        for i in range(6):
            cloud.submit(f"u{i}", duration_min=10.0, submit_min=0.0)
        cloud.run()
        snap = cloud.metrics.snapshot()
        depth = snap["gauges"]["cloud.queue_depth"]
        util = snap["gauges"]["cloud.utilization"]
        assert depth["max"] >= 4  # contention was visible
        assert util["max"] == 1.0
        assert all(0.0 <= v <= 1.0 for _, v in util["series"])
        assert snap["counters"]["cloud.jobs_completed"] == 6.0

    def test_untraced_platform_records_no_spans(self):
        cloud = CloudPlatform(servers=1)
        cloud.submit("alice", duration_min=5.0, submit_min=0.0)
        stats = cloud.run()
        assert stats.jobs == 1
        assert cloud.tracer is NULL_TRACER
