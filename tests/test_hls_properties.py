"""Property-based tests for the HLS compiler.

Random straight-line programs are generated as source text, exec'd into
real Python functions, compiled through the full HLS pipeline (DFG →
schedule → bind → RTL) and simulated — the result must match direct
Python evaluation modulo the datapath width, for every resource budget.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hls import build_dfg, compile_function, emulate_dfg, run_hls_module

_OPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def straight_line_program(draw):
    """A random function body over args a, b, c with temporaries."""
    n_statements = draw(st.integers(1, 5))
    names = ["a", "b", "c"]
    lines = []
    for i in range(n_statements):
        left = draw(st.sampled_from(names))
        right = draw(
            st.one_of(
                st.sampled_from(names),
                st.integers(0, 255).map(str),
            )
        )
        op = draw(st.sampled_from(_OPS))
        temp = f"t{i}"
        lines.append(f"    {temp} = {left} {op} {right}")
        names.append(temp)
    result = draw(st.sampled_from(names))
    shift = draw(st.integers(0, 3))
    body = "\n".join(lines)
    source = (
        f"def generated(a, b, c):\n{body}\n"
        f"    return {result} >> {shift}\n"
    )
    return source


class TestRandomPrograms:
    @given(
        source=straight_line_program(),
        args=st.tuples(
            st.integers(0, 255), st.integers(0, 255), st.integers(0, 255)
        ),
        muls=st.sampled_from([1, 2]),
    )
    @settings(max_examples=30, deadline=None)
    def test_generated_rtl_matches_python(self, source, args, muls):
        result = compile_function(
            source, resources={"mul": muls}, width=16
        )
        inputs = dict(zip(("a", "b", "c"), args))
        got = run_hls_module(result, inputs)

        dfg, _ = build_dfg(source)
        want = emulate_dfg(dfg, 16, inputs)
        assert got == want

    @given(source=straight_line_program())
    @settings(max_examples=30, deadline=None)
    def test_schedule_respects_dependencies(self, source):
        from repro.hls import list_schedule

        dfg, _ = build_dfg(source)
        schedule = list_schedule(dfg)
        for node in dfg.operation_nodes():
            for operand in node.operands:
                if operand in schedule.cycle:
                    assert schedule.cycle[operand] < schedule.cycle[node.index]

    @given(
        source=straight_line_program(),
        args=st.tuples(
            st.integers(0, 255), st.integers(0, 255), st.integers(0, 255)
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_emulation_matches_python_when_no_overflow(self, source, args):
        # With a 64-bit datapath and no subtraction (which can go
        # negative, where two's-complement shifting diverges from
        # Python's arithmetic shift), emulation equals plain Python.
        assume(" - " not in source)
        namespace: dict = {}
        exec(source, namespace)  # noqa: S102 - checking against real Python
        function = namespace["generated"]
        dfg, _ = build_dfg(source)
        inputs = dict(zip(("a", "b", "c"), args))
        mask = (1 << 64) - 1
        assert emulate_dfg(dfg, 64, inputs) == function(*args) & mask
