"""Tests for the FPGA prototyping path and the software-stack substrate."""

import pytest

from repro.fpga import (
    coverage_fraction,
    flow_coverage,
    get_device,
    lut_map,
)
from repro.hdl import ModuleBuilder, mux
from repro.swstack import CompileError, StackVm, compile_source
from repro.synth import lower, optimize


def adder_netlist(width=8):
    b = ModuleBuilder("adder")
    a = b.input("a", width)
    c = b.input("c", width)
    b.output("y", a + c)
    netlist, _ = optimize(lower(b.build()))
    return netlist


def counter_netlist(width=8):
    b = ModuleBuilder("counter")
    en = b.input("en", 1)
    count = b.register("count", width)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    netlist, _ = optimize(lower(b.build()))
    return netlist


class TestLutMap:
    def test_luts_fewer_than_gates(self):
        netlist = adder_netlist()
        mapping = lut_map(netlist, get_device("edu-ice40"))
        assert 0 < mapping.luts < len(netlist.gates)

    def test_ffs_counted(self):
        mapping = lut_map(counter_netlist(), get_device("edu-ice40"))
        assert mapping.ffs == 8

    def test_fits_small_device(self):
        mapping = lut_map(adder_netlist(), get_device("edu-ice40"))
        assert mapping.fits
        assert 0 < mapping.utilization < 1

    def test_bigger_k_gives_fewer_luts(self):
        netlist = adder_netlist(16)
        k4 = lut_map(netlist, get_device("edu-ice40"))
        k6 = lut_map(netlist, get_device("edu-big"))
        assert k6.luts <= k4.luts
        assert k6.depth <= k4.depth

    def test_depth_and_fmax(self):
        mapping = lut_map(adder_netlist(16), get_device("edu-ice40"))
        assert mapping.depth >= 2
        assert mapping.fmax_mhz > 0

    def test_report(self):
        report = lut_map(adder_netlist(), get_device("edu-ecp5")).report()
        for key in ("device", "luts", "ffs", "depth", "fits", "fmax_mhz"):
            assert key in report

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("virtex")


class TestFlowCoverage:
    def test_partial_coverage(self):
        coverage = flow_coverage()
        assert coverage["rtl_design"]
        assert coverage["synthesis"]
        assert not coverage["gds_export"]
        assert not coverage["tapeout"]
        assert 0.3 < coverage_fraction() < 0.9


class TestSwCompiler:
    def test_scalar_expression(self):
        # LOAD a, LOAD b, PUSH 2, MUL, ADD, STORE y
        program = compile_source("y = a + b * 2")
        assert program.instruction_count == 6
        assert program.source_lines == 1

    def test_vm_executes(self):
        program = compile_source("a = 6\nb = 7\ny = a * b")
        vm = StackVm()
        result = vm.run(program)
        assert result["y"] == 42

    def test_vector_one_liner_explodes(self):
        # The paper: "a single line of Python code can generate thousands
        # of assembly instructions".
        program = compile_source("vadd(c, a, b, 1000)")
        assert program.source_lines == 1
        assert program.instruction_count == 4000
        assert program.max_expansion() == 4000

    def test_vector_semantics(self):
        program = compile_source("vmul(c, a, b, 3)")
        vm = StackVm()
        vm.variables.update({"a[0]": 2, "a[1]": 3, "a[2]": 4,
                             "b[0]": 5, "b[1]": 6, "b[2]": 7})
        result = vm.run(program)
        assert [result["c[0]"], result["c[1]"], result["c[2]"]] == [10, 18, 28]

    def test_instructions_per_line(self):
        program = compile_source("# comment\ny = a + 1\n\nz = y * y")
        assert program.source_lines == 2
        assert program.instructions_per_line() == pytest.approx(4.0)

    def test_operators(self):
        source = "y = ((a | b) & 255) ^ (a >> 2) % 7"
        program = compile_source(source)
        vm = StackVm()
        vm.variables.update({"a": 200, "b": 77})
        result = vm.run(program)
        assert result["y"] == ((200 | 77) & 255) ^ ((200 >> 2) % 7)

    def test_negation(self):
        vm = StackVm()
        assert vm.run(compile_source("y = -5 + 8"))["y"] == 3

    def test_errors(self):
        for bad in ("y = f(x)", "if a: b", "y = 'str'", "vadd(c, a, b)",
                    "y = a ** 2"):
            with pytest.raises(CompileError):
                compile_source(bad)

    def test_listing(self):
        listing = compile_source("y = a + 1").listing()
        assert "LOAD a" in listing
        assert "STORE y" in listing
