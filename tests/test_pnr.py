"""Tests for floorplanning, placement, CTS and routing."""

import pytest

from repro.hdl import ModuleBuilder, mux
from repro.pdk import get_pdk
from repro.pnr import (
    hpwl,
    implement,
    make_floorplan,
    net_pin_positions,
    place,
    random_place,
    route,
    synthesize_clock_tree,
)
from repro.synth import synthesize


@pytest.fixture(scope="module")
def pdk():
    return get_pdk("edu130")


@pytest.fixture(scope="module")
def counter_mapped(pdk):
    b = ModuleBuilder("counter")
    en = b.input("en", 1)
    count = b.register("count", 8)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    return synthesize(b.build(), pdk.library).mapped


@pytest.fixture(scope="module")
def counter_floorplan(counter_mapped, pdk):
    return make_floorplan(counter_mapped, pdk.node, utilization=0.6)


class TestFloorplan:
    def test_core_fits_cells(self, counter_floorplan, counter_mapped):
        assert counter_floorplan.core_area_um2 >= counter_mapped.area_um2()

    def test_rows_snap_to_node_height(self, counter_floorplan, pdk):
        for row in counter_floorplan.rows:
            assert row.height == pytest.approx(pdk.node.row_height_um)

    def test_io_pins_on_boundary(self, counter_floorplan):
        for pin in counter_floorplan.io_pins:
            assert pin.x in (0.0, counter_floorplan.die_width)
            assert 0 < pin.y < counter_floorplan.die_height

    def test_io_pin_counts(self, counter_floorplan, counter_mapped):
        n_in = sum(len(v) for v in counter_mapped.inputs.values())
        n_out = sum(len(v) for v in counter_mapped.outputs.values())
        assert len(counter_floorplan.io_pins) == n_in + n_out

    def test_bad_utilization_rejected(self, counter_mapped, pdk):
        with pytest.raises(ValueError):
            make_floorplan(counter_mapped, pdk.node, utilization=1.5)

    def test_lower_utilization_grows_die(self, counter_mapped, pdk):
        tight = make_floorplan(counter_mapped, pdk.node, utilization=0.9)
        loose = make_floorplan(counter_mapped, pdk.node, utilization=0.3)
        assert loose.die_area_mm2 > tight.die_area_mm2


class TestPlacement:
    def test_all_cells_placed(self, counter_mapped, counter_floorplan):
        placement = place(counter_mapped, counter_floorplan)
        assert set(placement.cells) == {c.name for c in counter_mapped.cells}

    def test_cells_in_rows_without_overlap(self, counter_mapped, counter_floorplan):
        placement = place(counter_mapped, counter_floorplan)
        by_row: dict[float, list] = {}
        for cell in placement.cells.values():
            by_row.setdefault(round(cell.y, 4), []).append(cell)
        for cells in by_row.values():
            cells.sort(key=lambda c: c.x)
            for left, right in zip(cells, cells[1:]):
                assert left.x + left.width <= right.x + 1e-6

    def test_quadratic_beats_random(self, counter_mapped, counter_floorplan):
        quad = place(counter_mapped, counter_floorplan)
        rand = random_place(counter_mapped, counter_floorplan, seed=3)
        assert quad.hpwl_um < rand.hpwl_um

    def test_detailed_passes_do_not_hurt(self, counter_mapped, counter_floorplan):
        base = place(counter_mapped, counter_floorplan, detailed_passes=0)
        refined = place(counter_mapped, counter_floorplan, detailed_passes=2)
        assert refined.hpwl_um <= base.hpwl_um + 1e-6

    def test_hpwl_of_known_pins(self):
        pins = {1: [(0.0, 0.0), (3.0, 4.0)], 2: [(1.0, 1.0)]}
        assert hpwl(pins) == pytest.approx(7.0)

    def test_net_pin_positions_driver_first(self, counter_mapped, counter_floorplan):
        placement = place(counter_mapped, counter_floorplan)
        xy = {n: (c.cx, c.cy) for n, c in placement.cells.items()}
        pins = net_pin_positions(counter_mapped, xy, counter_floorplan)
        driver = counter_mapped.net_driver()
        for net, plist in pins.items():
            if net in driver:
                assert plist[0] == xy[driver[net].name]


class TestClockTree:
    def test_all_dffs_have_latency(self, counter_mapped, counter_floorplan, pdk):
        placement = place(counter_mapped, counter_floorplan)
        tree = synthesize_clock_tree(placement, counter_mapped.library, pdk.node)
        assert len(tree.sink_latency_ps) == len(counter_mapped.seq_cells)

    def test_buffered_tree_has_less_skew(self, pdk):
        # A wider design separates the flops enough for skew to matter.
        b = ModuleBuilder("wide")
        d = b.input("d", 32)
        r = b.register("r", 32)
        r.next = d
        b.output("q", r)
        mapped = synthesize(b.build(), pdk.library).mapped
        fp = make_floorplan(mapped, pdk.node, utilization=0.5)
        placement = place(mapped, fp)
        buffered = synthesize_clock_tree(placement, mapped.library, pdk.node,
                                         buffering=True)
        bare = synthesize_clock_tree(placement, mapped.library, pdk.node,
                                     buffering=False)
        assert buffered.buffers
        assert not bare.buffers
        assert buffered.skew_ps <= bare.skew_ps

    def test_skew_map_nonnegative(self, counter_mapped, counter_floorplan, pdk):
        placement = place(counter_mapped, counter_floorplan)
        tree = synthesize_clock_tree(placement, counter_mapped.library, pdk.node)
        skews = tree.skew_map()
        assert min(skews.values()) == 0.0
        assert max(skews.values()) == pytest.approx(tree.skew_ps)

    def test_empty_design_gives_empty_tree(self, pdk):
        b = ModuleBuilder("comb")
        a = b.input("a", 4)
        b.output("y", ~a)
        mapped = synthesize(b.build(), pdk.library).mapped
        fp = make_floorplan(mapped, pdk.node)
        placement = place(mapped, fp)
        tree = synthesize_clock_tree(placement, mapped.library, pdk.node)
        assert tree.skew_ps == 0.0
        assert tree.stats()["sinks"] == 0


class TestRouting:
    def test_routes_all_nets(self, counter_mapped, counter_floorplan, pdk):
        placement = place(counter_mapped, counter_floorplan)
        result = route(counter_mapped, placement, pdk.node)
        assert not result.failed_nets
        assert result.total_wirelength_um > 0

    def test_wire_lengths_exported(self, counter_mapped, counter_floorplan, pdk):
        placement = place(counter_mapped, counter_floorplan)
        result = route(counter_mapped, placement, pdk.node)
        lengths = result.wire_lengths()
        assert lengths
        assert all(length >= 0 for length in lengths.values())

    def test_rip_up_does_not_increase_overflow(self, counter_mapped,
                                               counter_floorplan, pdk):
        placement = place(counter_mapped, counter_floorplan)
        without = route(counter_mapped, placement, pdk.node, rip_up=False,
                        capacity=1)
        with_ripup = route(counter_mapped, placement, pdk.node, rip_up=True,
                           capacity=1, max_iterations=4)
        assert with_ripup.overflow <= without.overflow

    def test_stats_shape(self, counter_mapped, counter_floorplan, pdk):
        placement = place(counter_mapped, counter_floorplan)
        stats = route(counter_mapped, placement, pdk.node).stats()
        for key in ("nets", "wirelength_um", "vias", "overflow"):
            assert key in stats


class TestImplement:
    def test_full_backend(self, counter_mapped, pdk):
        design = implement(counter_mapped, pdk)
        report = design.report()
        assert report["die_area_mm2"] > 0
        assert report["routing_overflow"] == 0
        assert design.wire_lengths()

    def test_unknown_placer_rejected(self, counter_mapped, pdk):
        with pytest.raises(ValueError):
            implement(counter_mapped, pdk, placer="genetic")

    def test_backend_feeds_sta(self, counter_mapped, pdk):
        from repro.sta import TimingAnalyzer

        design = implement(counter_mapped, pdk)
        sta = TimingAnalyzer(
            counter_mapped, pdk.node,
            wire_lengths_um=design.wire_lengths(),
            skew_ps=design.clock_tree.skew_map(),
        )
        report = sta.analyze(10_000.0)
        assert report.met
