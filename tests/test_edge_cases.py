"""Edge-case and robustness tests across the toolkit."""

import pytest

from repro.core import (
    COMMERCIAL,
    OPEN,
    FlowError,
    FlowOptions,
    run_flow,
    timing_report,
)
from repro.hdl import ModuleBuilder, cat, mux, to_verilog
from repro.layout import GdsLibrary, GdsStruct, read_gds, write_gds
from repro.pdk import get_pdk
from repro.power import PowerAnalyzer
from repro.sim import Simulator, VcdWriter
from repro.synth import synthesize


class TestVcdScaling:
    def test_many_signals_get_unique_identifiers(self):
        # Exercise the multi-character VCD identifier generator.
        b = ModuleBuilder("wide")
        a = b.input("a", 4)
        value = a
        for i in range(80):
            value = b.wire(f"w{i}", (value + 1).trunc(4))
        b.output("y", value)
        sim = Simulator(b.build())
        vcd = VcdWriter()
        sim.attach_tracer(vcd)
        sim.set("a", 3)
        sim.step(2)
        text = vcd.render()
        idents = [
            line.split()[3]
            for line in text.splitlines()
            if line.startswith("$var")
        ]
        assert len(idents) == len(set(idents)) >= 82

    def test_unchanged_signals_not_redumped(self):
        b = ModuleBuilder("m")
        a = b.input("a", 1)
        b.output("y", ~a)
        sim = Simulator(b.build())
        vcd = VcdWriter()
        sim.attach_tracer(vcd)
        sim.step(5)  # nothing changes after the first sample
        text = vcd.render()
        sample_lines = [
            line for line in text.splitlines()
            if line and not line.startswith(("$", "#"))
        ]
        # One initial dump per signal only.
        assert len(sample_lines) == 2


class TestGdsRobustness:
    def test_unknown_records_skipped(self):
        library = GdsLibrary("lib")
        struct = library.add(GdsStruct("s"))
        struct.add_rect_um(1, 0, 0, 0, 1, 1)
        data = bytearray(write_gds(library))
        # Inject an unknown-but-well-formed record (PROPATTR, 0x2B) right
        # after the header record (6 bytes).
        unknown = bytes([0x00, 0x06, 0x2B, 0x02, 0x00, 0x01])
        data = data[:6] + unknown + data[6:]
        parsed = read_gds(bytes(data))
        assert parsed.struct("s").boundaries

    def test_empty_library_roundtrip(self):
        parsed = read_gds(write_gds(GdsLibrary("empty")))
        assert parsed.name == "empty"
        assert parsed.structs == []


class TestFlowCorners:
    def test_violated_timing_still_reports(self):
        b = ModuleBuilder("slowpath")
        a = b.input("a", 8)
        c = b.input("c", 8)
        acc = b.register("acc", 16)
        acc.next = (acc + a * c).trunc(16)
        b.output("y", acc)
        # 1 ps period: guaranteed violation, flow must not raise.
        result = run_flow(
            b.build(), get_pdk("edu130"),
            FlowOptions(preset=OPEN, clock_period_ps=1.0, strict_drc=False),
        )
        assert not result.timing.met
        assert result.ppa.wns_ps < 0
        text = timing_report(result)
        assert "VIOLATED" in text

    def test_combinational_only_design(self):
        b = ModuleBuilder("combo")
        a = b.input("a", 8)
        b.output("y", ~a)
        result = run_flow(b.build(), get_pdk("edu180"),
                          FlowOptions(preset=OPEN))
        assert result.ok
        assert result.physical.clock_tree.stats()["sinks"] == 0

    def test_single_cell_design(self):
        b = ModuleBuilder("one")
        a = b.input("a", 1)
        b.output("y", ~a)
        result = run_flow(b.build(), get_pdk("edu130"),
                          FlowOptions(preset=OPEN))
        assert result.ok
        assert result.ppa.cell_count >= 1

    def test_commercial_preset_on_tiny_design(self):
        b = ModuleBuilder("tiny")
        a = b.input("a", 2)
        b.output("y", a ^ 0b11)
        result = run_flow(b.build(), get_pdk("edu130"),
                          FlowOptions(preset=COMMERCIAL))
        assert result.ok

    def test_failing_equivalence_raises(self, monkeypatch):
        from repro.synth import verify

        b = ModuleBuilder("m")
        a = b.input("a", 4)
        b.output("y", a + 1)
        module = b.build()

        class FakeResult:
            passed = False
            mismatches = ["injected"]

        monkeypatch.setattr(
            "repro.core.flow.synthesize",
            lambda *args, **kwargs: _fake_synth(module, FakeResult()),
        )
        with pytest.raises(FlowError, match="equivalence"):
            run_flow(module, get_pdk("edu130"), FlowOptions(preset=OPEN))


def _fake_synth(module, equivalence):
    from repro.pdk import get_pdk
    from repro.synth.synthesize import synthesize as real

    result = real(module, get_pdk("edu130").library)
    result.equivalence = equivalence
    return result


class TestPowerCorners:
    def test_extreme_input_probabilities(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        c = b.input("c", 8)
        b.output("y", a & c)
        mapped = synthesize(b.build(), get_pdk("edu130").library).mapped
        pdk = get_pdk("edu130")
        stuck = PowerAnalyzer(
            mapped, pdk.node, input_probabilities={"a": 0.0, "c": 1.0}
        ).analyze(100.0)
        # Constant inputs: almost no switching, only clockless leakage.
        assert stuck.dynamic_uw == pytest.approx(0.0, abs=1e-9)
        assert stuck.leakage_uw > 0

    def test_zero_frequency(self):
        b = ModuleBuilder("m")
        a = b.input("a", 4)
        b.output("y", ~a)
        mapped = synthesize(b.build(), get_pdk("edu130").library).mapped
        report = PowerAnalyzer(mapped, get_pdk("edu130").node).analyze(0.0)
        assert report.dynamic_uw == 0.0
        assert report.total_uw == report.leakage_uw


class TestEmissionCorners:
    def test_wide_constants_emit(self):
        b = ModuleBuilder("m")
        b.input("a", 1)
        b.output("y", b.const((1 << 63) - 1, 64))
        text = to_verilog(b.build())
        assert "64'd9223372036854775807" in text

    def test_deeply_nested_expression_emits(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        value = a
        for _ in range(30):
            value = (value + 1).trunc(8)
        b.output("y", value)
        text = to_verilog(b.build())
        assert text.count("+") == 30

    def test_cat_of_many_parts(self):
        b = ModuleBuilder("m")
        bits = [b.input(f"b{i}", 1) for i in range(16)]
        b.output("y", cat(*bits))
        sim = Simulator(b.build())
        for i in range(16):
            sim.set(f"b{i}", 1 if i == 0 else 0)
        # First cat argument is the MSB.
        assert sim.get("y") == 1 << 15


class TestSimulatorCorners:
    def test_mux_chain_deep(self):
        b = ModuleBuilder("m")
        sel = b.input("sel", 4)
        value = b.const(0, 8)
        for i in range(16):
            value = mux(sel.eq(i), b.const(i * 3, 8), value)
        b.output("y", value)
        sim = Simulator(b.build())
        for i in range(16):
            sim.set("sel", i)
            assert sim.get("y") == i * 3

    def test_peek_all_contains_wires(self):
        b = ModuleBuilder("m")
        a = b.input("a", 4)
        b.wire("intermediate", a + 1)
        b.output("y", a)
        sim = Simulator(b.build())
        assert "intermediate" in sim.peek_all()
