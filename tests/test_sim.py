"""Tests for the RTL simulator, elaboration, VCD and testbench harness."""

import pytest

from repro.hdl import HdlError, ModuleBuilder, cat, elaborate, mux, to_verilog
from repro.hdl.verilog import count_rtl_lines
from repro.sim import Simulator, Testbench, VcdWriter


def build_accumulator(width=8):
    b = ModuleBuilder("accum")
    data = b.input("data", width)
    load = b.input("load", 1)
    acc = b.register("acc", width)
    acc.next = mux(load, data, (acc + data).trunc(width))
    b.output("q", acc)
    return b.build()


class TestSimulator:
    def test_accumulator(self):
        sim = Simulator(build_accumulator())
        sim.set("data", 5)
        sim.set("load", 1)
        sim.step()
        sim.set("load", 0)
        sim.step(3)
        assert sim.get("q") == 20

    def test_set_rejects_non_input(self):
        sim = Simulator(build_accumulator())
        with pytest.raises(HdlError):
            sim.set("q", 0)

    def test_set_rejects_overflow(self):
        sim = Simulator(build_accumulator())
        with pytest.raises(HdlError):
            sim.set("data", 256)

    def test_unknown_signal(self):
        sim = Simulator(build_accumulator())
        with pytest.raises(KeyError):
            sim.get("nope")

    def test_reset_restores_registers(self):
        sim = Simulator(build_accumulator())
        sim.set("data", 7)
        sim.set("load", 1)
        sim.step()
        sim.reset()
        assert sim.get("q") == 0

    def test_cycle_counter(self):
        sim = Simulator(build_accumulator())
        sim.step(7)
        assert sim.cycle == 7

    def test_run_vectors(self):
        sim = Simulator(build_accumulator())
        records = sim.run_vectors(
            [{"data": 1, "load": 1}, {"data": 2, "load": 0}, {"data": 0, "load": 0}],
            watch=["q"],
        )
        assert [r["q"] for r in records] == [0, 1, 3]


class TestHierarchySim:
    def build_two_stage(self):
        stage_b = ModuleBuilder("stage")
        d = stage_b.input("d", 8)
        q = stage_b.register("q", 8)
        q.next = d
        stage_b.output("out", q)
        stage = stage_b.build()

        b = ModuleBuilder("pipe2")
        d = b.input("d", 8)
        s0 = b.instance("s0", stage, d=d)
        s1 = b.instance("s1", stage, d=s0["out"])
        b.output("q", s1["out"])
        return b.build()

    def test_two_stage_delay(self):
        sim = Simulator(self.build_two_stage())
        sim.set("d", 0xAB)
        sim.step(2)
        assert sim.get("q") == 0xAB

    def test_hierarchical_names_visible(self):
        sim = Simulator(self.build_two_stage())
        assert "s0.q" in sim.peek_all()

    def test_elaborate_flattens(self):
        flat = elaborate(self.build_two_stage())
        assert not flat.instances
        assert len(flat.registers) == 2


class TestVcd:
    def test_vcd_renders_header_and_changes(self):
        sim = Simulator(build_accumulator())
        vcd = VcdWriter(signals=["q", "data"])
        sim.attach_tracer(vcd)
        sim.set("data", 3)
        sim.set("load", 1)
        sim.step(2)
        text = vcd.render()
        assert "$timescale" in text
        assert "$var wire 8" in text
        assert "#1" in text

    def test_vcd_save(self, tmp_path):
        sim = Simulator(build_accumulator())
        vcd = VcdWriter()
        sim.attach_tracer(vcd)
        sim.step(2)
        path = tmp_path / "wave.vcd"
        vcd.save(str(path))
        assert path.read_text().startswith("$date")


class TestTestbench:
    def test_passing_model(self):
        def model(inputs, state):
            acc = state.get("acc", 0)
            expected = {"q": acc}
            if inputs["load"]:
                state["acc"] = inputs["data"]
            else:
                state["acc"] = (acc + inputs["data"]) % 256
            return expected

        tb = Testbench(build_accumulator(), model, seed=7)
        result = tb.run_random(cycles=100)
        assert result.passed, result.mismatches[:3]
        assert "PASS" in result.summary()

    def test_failing_model_reports_mismatches(self):
        def wrong_model(inputs, state):
            return {"q": 123}

        tb = Testbench(build_accumulator(), wrong_model, seed=7)
        result = tb.run_random(cycles=10)
        assert not result.passed
        assert result.mismatches
        assert "FAIL" in result.summary()


class TestVerilogEmission:
    def test_counter_verilog_shape(self):
        b = ModuleBuilder("counter")
        en = b.input("en", 1)
        count = b.register("count", 8)
        count.next = mux(en, count + 1, count)
        b.output("q", count)
        text = to_verilog(b.build())
        assert "module counter" in text
        assert "always @(posedge clk)" in text
        assert "assign q" in text
        assert text.count("endmodule") == 1

    def test_hierarchical_emission_orders_children_first(self):
        inner_b = ModuleBuilder("leaf")
        a = inner_b.input("a", 2)
        inner_b.output("y", ~a)
        leaf = inner_b.build()
        b = ModuleBuilder("top")
        x = b.input("x", 2)
        outs = b.instance("u0", leaf, a=x)
        b.output("y", outs["y"])
        text = to_verilog(b.build())
        assert text.index("module leaf") < text.index("module top")
        assert "leaf u0" in text

    def test_count_rtl_lines(self):
        assert count_rtl_lines(build_accumulator()) > 5

    def test_cat_and_slice_emission(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        c = b.input("c", 8)
        b.output("y", cat(a[3:0], c[7]))
        text = to_verilog(b.build())
        assert "{" in text and "[3:0]" in text and "[7]" in text
