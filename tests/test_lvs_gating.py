"""Tests for LVS-lite checking and clock-gating analysis."""

import pytest

from repro.hdl import ModuleBuilder, mux
from repro.layout import GdsSRef, build_chip_gds
from repro.layout.lvs import check_lvs
from repro.pdk import get_pdk
from repro.pnr import implement
from repro.power.gating import analyze_clock_gating
from repro.synth import synthesize


@pytest.fixture(scope="module")
def chip():
    pdk = get_pdk("edu130")
    b = ModuleBuilder("lvs_target")
    en = b.input("en", 1)
    count = b.register("count", 6)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    module = b.build()
    mapped = synthesize(module, pdk.library).mapped
    design = implement(mapped, pdk)
    return module, design, build_chip_gds(design)


class TestLvs:
    def test_generated_chip_is_clean(self, chip):
        _, design, library = chip
        report = check_lvs(library, design)
        assert report.clean, report.mismatches[:5]
        assert report.cells_checked == len(design.mapped.cells)
        assert "CLEAN" in report.summary()

    def test_missing_cell_detected(self, chip):
        _, design, library = chip
        top = library.struct(design.mapped.name)
        removed = top.srefs.pop()
        try:
            report = check_lvs(library, design)
            assert not report.clean
            assert any("netlist has" in m for m in report.mismatches)
        finally:
            top.srefs.append(removed)

    def test_foreign_cell_detected(self, chip):
        _, design, library = chip
        top = library.struct(design.mapped.name)
        top.srefs.append(GdsSRef("ROGUE_MACRO", (0, 0)))
        try:
            report = check_lvs(library, design)
            assert any("unknown cell" in m for m in report.mismatches)
            assert any("missing structure" in m for m in report.mismatches)
        finally:
            top.srefs.pop()

    def test_missing_pin_label_detected(self, chip):
        _, design, library = chip
        top = library.struct(design.mapped.name)
        removed = top.texts.pop(0)
        try:
            report = check_lvs(library, design)
            assert any("no pin label" in m for m in report.mismatches)
        finally:
            top.texts.insert(0, removed)

    def test_missing_top_detected(self, chip):
        _, design, library = chip
        top = library.struct(design.mapped.name)
        top.name = "renamed"
        try:
            report = check_lvs(library, design)
            assert any("top structure" in m for m in report.mismatches)
        finally:
            top.name = design.mapped.name


class TestClockGating:
    def build_mixed(self):
        b = ModuleBuilder("mixed")
        en = b.input("en", 1)
        d = b.input("d", 8)
        gated = b.register("gated", 8)
        gated.next = mux(en, d, gated)  # enable-mux idiom
        free = b.register("free", 8)
        free.next = (free + 1).trunc(8)  # always toggling: not gateable
        b.output("y", gated ^ free)
        return b.build()

    def test_finds_only_enable_muxes(self):
        module = self.build_mixed()
        pdk = get_pdk("edu130")
        report = analyze_clock_gating(module, pdk.library, pdk.node)
        assert [c.register for c in report.candidates] == ["gated"]
        assert report.gated_bits == 8
        assert report.total_register_bits == 16
        assert report.coverage == pytest.approx(0.5)

    def test_saving_scales_with_idleness(self):
        module = self.build_mixed()
        pdk = get_pdk("edu130")
        busy = analyze_clock_gating(module, pdk.library, pdk.node,
                                    enable_probability=0.9)
        idle = analyze_clock_gating(module, pdk.library, pdk.node,
                                    enable_probability=0.05)
        assert idle.saving_fraction > busy.saving_fraction
        assert idle.clock_power_after_uw < busy.clock_power_after_uw
        assert "saved" in idle.summary()

    def test_never_worse_than_ungated(self):
        module = self.build_mixed()
        pdk = get_pdk("edu130")
        report = analyze_clock_gating(module, pdk.library, pdk.node,
                                      enable_probability=1.0)
        assert report.clock_power_after_uw <= report.clock_power_before_uw

    def test_combinational_module(self):
        b = ModuleBuilder("comb")
        a = b.input("a", 4)
        b.output("y", ~a)
        pdk = get_pdk("edu130")
        report = analyze_clock_gating(b.build(), pdk.library, pdk.node)
        assert report.coverage == 0.0
        assert report.clock_power_before_uw == 0.0

    def test_probability_validated(self):
        pdk = get_pdk("edu130")
        with pytest.raises(ValueError):
            analyze_clock_gating(self.build_mixed(), pdk.library, pdk.node,
                                 enable_probability=1.5)
