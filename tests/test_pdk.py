"""Tests for process nodes, standard-cell libraries and PDK access terms."""

import pytest

from repro.pdk import (
    Library,
    get_pdk,
    list_pdks,
    make_layer_stack,
    make_library,
    scale_node,
)


class TestNodeScaling:
    def test_reference_values(self):
        node = scale_node("ref", 130.0, 5)
        assert node.inv_intrinsic_ps == pytest.approx(18.0)
        assert node.inv_input_cap_ff == pytest.approx(2.0)
        assert node.row_height_um == pytest.approx(2.6)

    def test_smaller_is_faster(self):
        big = scale_node("a", 180.0, 4)
        small = scale_node("b", 45.0, 7)
        assert small.fo4_delay_ps < big.fo4_delay_ps

    def test_smaller_is_denser(self):
        big = scale_node("a", 180.0, 4)
        small = scale_node("b", 45.0, 7)
        assert small.site_width_um < big.site_width_um
        assert small.row_height_um < big.row_height_um

    def test_smaller_is_leakier(self):
        big = scale_node("a", 180.0, 4)
        small = scale_node("b", 45.0, 7)
        assert small.inv_leakage_nw > big.inv_leakage_nw

    def test_smaller_has_more_resistive_wires(self):
        big = scale_node("a", 180.0, 4)
        small = scale_node("b", 45.0, 7)
        assert small.wire_res_ohm_per_um > big.wire_res_ohm_per_um

    def test_voltage_bounded(self):
        for nm in (250, 180, 130, 90, 65, 45, 28, 16, 7):
            node = scale_node("n", float(nm), 5)
            assert 0.7 <= node.voltage_v <= 1.8

    def test_invalid_feature_rejected(self):
        with pytest.raises(ValueError):
            scale_node("bad", -1.0, 4)


class TestLibrary:
    @pytest.fixture(scope="class")
    def lib(self) -> Library:
        return make_library(scale_node("t", 130.0, 5))

    def test_expected_kinds_present(self, lib):
        kinds = lib.kinds()
        for kind in ("INV", "NAND2", "NOR2", "XOR2", "AOI21", "OAI21",
                     "MUX2", "DFF", "TIE0", "TIE1", "BUF", "NAND3"):
            assert kind in kinds

    def test_drive_strengths(self, lib):
        assert lib.drives_for("INV") == [1, 2, 4]
        assert lib.drives_for("TIE0") == [1]

    def test_stronger_variant_has_less_resistance(self, lib):
        x1 = lib.by_kind("NAND2", 1)
        x2 = lib.stronger_variant(x1)
        assert x2.drive == 2
        assert x2.resistance_kohm < x1.resistance_kohm
        assert x2.area_um2 > x1.area_um2

    def test_top_drive_has_no_stronger_variant(self, lib):
        x4 = lib.by_kind("INV", 4)
        assert lib.stronger_variant(x4) is None

    def test_cell_functions(self, lib):
        nand = lib.by_kind("NAND2")
        assert [nand.function(a, b) for a, b in
                ((0, 0), (0, 1), (1, 0), (1, 1))] == [1, 1, 1, 0]
        aoi = lib.by_kind("AOI21")
        assert aoi.function(1, 1, 0) == 0
        assert aoi.function(0, 0, 0) == 1
        mux = lib.by_kind("MUX2")
        assert mux.function(0, 1, 1) == 1  # s=1 selects b
        assert mux.function(0, 1, 0) == 0

    def test_delay_increases_with_load(self, lib):
        inv = lib.by_kind("INV")
        assert inv.delay_ps(10.0) > inv.delay_ps(1.0)

    def test_dff_is_sequential(self, lib):
        assert lib.dff.is_sequential
        assert lib.dff.output == "q"

    def test_missing_cell_raises(self, lib):
        with pytest.raises(KeyError):
            lib.by_kind("NAND9")

    def test_complex_cells_smaller_than_composition(self, lib):
        # The area argument for AOI cells: one AOI21 beats AND2+NOR2.
        aoi = lib.by_kind("AOI21")
        composed = lib.by_kind("AND2").area_um2 + lib.by_kind("NOR2").area_um2
        assert aoi.area_um2 < composed


class TestLayerStack:
    def test_metal_count_matches_node(self):
        node = scale_node("t", 130.0, 5)
        stack = make_layer_stack(node)
        mets = [l for l in stack.layers if l.name.startswith("met")]
        assert len(mets) == 5

    def test_upper_metals_are_fatter(self):
        stack = make_layer_stack(scale_node("t", 130.0, 5))
        assert stack.by_name("met5").min_width_um > stack.by_name("met1").min_width_um

    def test_unique_gds_numbers(self):
        stack = make_layer_stack(scale_node("t", 130.0, 5))
        numbers = [(l.gds_layer, l.gds_datatype) for l in stack.layers]
        assert len(numbers) == len(set(numbers))

    def test_lookup(self):
        stack = make_layer_stack(scale_node("t", 130.0, 4))
        assert stack.by_name("poly").gds_layer == 2
        with pytest.raises(KeyError):
            stack.by_name("met9")


class TestBuiltinPdks:
    def test_all_three_available(self):
        assert list_pdks() == ["edu045", "edu130", "edu180"]

    def test_cached(self):
        assert get_pdk("edu130") is get_pdk("edu130")

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_pdk("sky130")

    def test_open_nodes_have_no_nda(self):
        for name in ("edu130", "edu180"):
            pdk = get_pdk(name)
            assert pdk.is_open
            assert not pdk.terms.nda_required
            assert pdk.terms.min_prior_tapeouts == 0

    def test_commercial_node_is_gated(self):
        pdk = get_pdk("edu045")
        assert not pdk.is_open
        assert pdk.terms.nda_required
        assert pdk.terms.export_controlled
        assert pdk.terms.min_prior_tapeouts > 0

    def test_advanced_node_costs_more(self):
        assert (
            get_pdk("edu045").terms.mpw_cost_per_mm2_eur
            > get_pdk("edu130").terms.mpw_cost_per_mm2_eur
            > get_pdk("edu180").terms.mpw_cost_per_mm2_eur
        )

    def test_turnaround_exceeds_a_teaching_term(self):
        # Section III-C: turnaround exceeds typical course lengths (~90 days).
        for name in list_pdks():
            assert get_pdk(name).terms.total_turnaround_days > 90
