"""Tests for the Verilog reader: round trips with the emitter."""

import pytest

from repro.hdl import ModuleBuilder, cat, mux, to_verilog
from repro.hdl.verilog_parser import VerilogParseError, parse_verilog
from repro.sim import Simulator
from repro.synth import check_equivalence, lower


def roundtrip(module):
    return parse_verilog(to_verilog(module))


def assert_equivalent(original, parsed, cycles=60):
    # Compare the original RTL against the netlist of the parsed module.
    result = check_equivalence(original, lower(parsed), cycles=cycles)
    assert result.passed, result.mismatches[:3]


class TestRoundTrip:
    def test_combinational_design(self):
        b = ModuleBuilder("comb")
        a = b.input("a", 8)
        c = b.input("c", 8)
        b.output("y", (a + c) ^ (a & c))
        b.output("z", a.lt(c))
        module = b.build()
        parsed = roundtrip(module)
        assert parsed.name == "comb"
        assert_equivalent(module, parsed)

    def test_sequential_design_with_reset(self):
        b = ModuleBuilder("counter")
        en = b.input("en", 1)
        count = b.register("count", 8, reset=7)
        count.next = mux(en, count + 1, count)
        b.output("q", count)
        module = b.build()
        parsed = roundtrip(module)
        assert len(parsed.registers) == 1
        assert parsed.registers[0].reset_value == 7
        assert_equivalent(module, parsed, cycles=100)

    def test_mux_cat_slice(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        s = b.input("s", 1)
        b.output("y", mux(s, cat(a[3:0], a[7:4]), a))
        module = b.build()
        assert_equivalent(module, roundtrip(module))

    def test_shifts_and_reductions(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        b.output("y", (a << 2) | (a >> 3))
        b.output("r", a.reduce_xor() & a.reduce_or())
        module = b.build()
        assert_equivalent(module, roundtrip(module))

    def test_hierarchy(self):
        leaf_b = ModuleBuilder("leafmod")
        a = leaf_b.input("a", 4)
        leaf_b.output("y", ~a)
        leaf = leaf_b.build()
        b = ModuleBuilder("topmod")
        x = b.input("x", 4)
        out = b.instance("u0", leaf, a=x)
        b.output("y", out["y"])
        module = b.build()
        parsed = roundtrip(module)
        assert parsed.instances[0].module.name == "leafmod"
        assert_equivalent(module, parsed)

    def test_ip_catalogue_roundtrips(self):
        from repro.ip import generate

        for name in ("counter", "alu", "gray_counter", "pwm"):
            ip = generate(name)
            parsed = parse_verilog(ip.rtl())
            assert_equivalent(ip.module, parsed, cycles=80)


class TestHandwritten:
    def test_simple_handwritten_module(self):
        source = """
        // a hand-written adder with precedence (no parens)
        module adder (clk, rst, a, b, q);
          input clk;
          input rst;
          input [3:0] a;
          input [3:0] b;
          output [4:0] q;
          reg [4:0] acc;
          assign q = acc;
          always @(posedge clk) begin
            if (rst) begin
              acc <= 5'd0;
            end else begin
              acc <= a + b;
            end
          end
        endmodule
        """
        module = parse_verilog(source)
        sim = Simulator(module)
        sim.set("a", 9)
        sim.set("b", 8)
        sim.step()
        assert sim.get("q") == 17

    def test_precedence_without_parens(self):
        source = """
        module m (a, b, y);
          input [7:0] a;
          input [7:0] b;
          output [7:0] y;
          assign y = a + b * 2 & 8'hF0;
        endmodule
        """
        module = parse_verilog(source)
        sim = Simulator(module)
        sim.set("a", 5)
        sim.set("b", 3)
        assert sim.get("y") == (5 + 3 * 2) & 0xF0

    def test_block_comments_stripped(self):
        source = "module m (a, y); /* block\ncomment */ input a; output y; assign y = ~a; endmodule"
        module = parse_verilog(source)
        sim = Simulator(module)
        sim.set("a", 0)
        assert sim.get("y") == 1


class TestErrors:
    def test_undeclared_identifier(self):
        with pytest.raises(VerilogParseError, match="undeclared"):
            parse_verilog("module m (y); output y; assign y = ghost; endmodule")

    def test_unknown_submodule(self):
        with pytest.raises(VerilogParseError, match="unknown module"):
            parse_verilog(
                "module m (a, y); input a; output y; wire w;"
                " mystery u0 (.p(a), .q(w)); assign y = w; endmodule"
            )

    def test_truncated_file(self):
        with pytest.raises(VerilogParseError):
            parse_verilog("module m (a, y); input a;")

    def test_empty_file(self):
        with pytest.raises(VerilogParseError, match="no module"):
            parse_verilog("// nothing here")

    def test_port_without_direction(self):
        with pytest.raises(VerilogParseError, match="direction"):
            parse_verilog("module m (a); wire a; endmodule")


class TestWidthSemantics:
    def test_wide_output_keeps_ir_modular_semantics(self):
        # Output wider than the expression: the IR computes the add
        # modulo 2^8 and zero-extends; the emitted Verilog must preserve
        # that through the self-determining braces.
        b = ModuleBuilder("widen")
        a = b.input("a", 8)
        c = b.input("c", 8)
        b.output("y", a + c, width=12)
        module = b.build()
        text = to_verilog(module)
        assert "{(a + c)}" in text
        parsed = parse_verilog(text)
        sim = Simulator(parsed)
        sim.set("a", 200)
        sim.set("c", 100)
        assert sim.get("y") == (200 + 100) % 256
        assert_equivalent(module, parsed)

    def test_wide_register_keeps_ir_semantics(self):
        b = ModuleBuilder("widereg")
        a = b.input("a", 4)
        r = b.register("r", 8)
        r.next = (a + a).trunc(4)
        b.output("q", r)
        module = b.build()
        assert_equivalent(module, roundtrip(module), cycles=40)
