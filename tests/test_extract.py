"""Tests for GDS-in signoff: extraction, connectivity LVS, trojans.

The principle under test: the exported GDSII *bytes* are the only
source of truth.  Everything here parses those bytes back, re-derives
the netlist from geometry alone and checks it against the mapped
netlist — and the must-fail half plants seeded trojans that the check
has to catch.
"""

import random
import struct as struct_mod

import pytest

from repro.cli import main
from repro.core.flow import FlowResult, run_flow
from repro.core.options import FlowOptions
from repro.core.signoff import run_signoff
from repro.extract import (
    TROJAN_KINDS,
    compare_netlists,
    extract_netlist,
    identify_masters,
    infer_top,
    master_fingerprint,
    mutate_gds,
    reference_fingerprints,
    run_lvs,
)
from repro.ip.catalog import catalogue, generate
from repro.layout import build_chip_gds, read_gds, write_gds
from repro.layout.chip import cell_master_struct
from repro.layout.lvs import LvsReport, check_lvs
from repro.pdk import get_pdk
from repro.pnr import implement
from repro.synth import synthesize


@pytest.fixture(scope="module")
def pdk():
    return get_pdk("edu130")


@pytest.fixture(scope="module")
def counter_stack(pdk):
    """(mapped, design, gds bytes) for the catalogue counter."""
    mapped = synthesize(generate("counter").module, pdk.library).mapped
    design = implement(mapped, pdk)
    data = write_gds(build_chip_gds(design))
    return mapped, design, data


class TestGdsHardening:
    """Malformed streams must raise ValueError — never IndexError or
    struct.error — with the offending record's byte offset."""

    def test_truncations_never_crash(self, counter_stack):
        _, _, data = counter_stack
        for cut in range(0, min(len(data), 4000), 7):
            try:
                read_gds(data[:cut])
            except ValueError:
                pass  # the only acceptable exception

    def test_garbage_never_crashes(self):
        rng = random.Random(7)
        for _ in range(50):
            blob = bytes(rng.randrange(256) for _ in range(200))
            try:
                read_gds(blob)
            except ValueError:
                pass

    def test_bitflips_never_crash(self, counter_stack):
        _, _, data = counter_stack
        rng = random.Random(11)
        for _ in range(50):
            blob = bytearray(data)
            pos = rng.randrange(len(blob))
            blob[pos] ^= 1 << rng.randrange(8)
            try:
                read_gds(bytes(blob))
            except ValueError:
                pass

    def test_error_carries_offset(self):
        with pytest.raises(ValueError, match="offset 0"):
            read_gds(b"\x00\x08\x04\x02")  # 8-byte record, 4-byte stream

    def test_invalid_record_length(self):
        # Record length below the 4-byte header is structurally invalid.
        with pytest.raises(ValueError, match="length"):
            read_gds(struct_mod.pack(">HBB", 2, 0x00, 0x02) + b"\x00" * 8)

    def test_sref_without_xy_rejected(self, counter_stack):
        _, _, data = counter_stack
        # Excise the first XY record that follows an SREF header.
        sref = data.find(b"\x00\x04\x0a\x00")  # 4-byte SREF record
        assert sref >= 0
        offset = sref
        while True:
            (length,) = struct_mod.unpack_from(">H", data, offset)
            rtype = data[offset + 2]
            if rtype == 0x10:  # XY
                blob = data[:offset] + data[offset + length:]
                break
            offset += length
        with pytest.raises(ValueError, match="no XY"):
            read_gds(blob)

    def test_endstr_without_struct_skipped(self):
        # ENDSTR with no open structure parses to an empty library.
        blob = (
            struct_mod.pack(">HBB", 4, 0x07, 0x00)  # ENDSTR
            + struct_mod.pack(">HBB", 4, 0x04, 0x00)  # ENDLIB
        )
        assert read_gds(blob).structs == []

    def test_units_mismatch_rejected(self, counter_stack):
        _, _, data = counter_stack
        units = data.find(b"\x00\x14\x03\x05")  # 20-byte UNITS record
        assert units >= 0
        blob = bytearray(data)
        blob[units + 4] = 0x45  # corrupt the first real8's exponent
        with pytest.raises(ValueError, match="UNITS"):
            read_gds(bytes(blob))

    def test_roundtrip_every_catalogue_design(self, pdk):
        for name in catalogue():
            mapped = synthesize(generate(name).module, pdk.library).mapped
            library = build_chip_gds(implement(mapped, pdk))
            parsed = read_gds(write_gds(library))
            assert [s.name for s in parsed.structs] == [
                s.name for s in library.structs
            ]
            for original, copy in zip(library.structs, parsed.structs):
                assert copy.boundaries == original.boundaries
                assert copy.srefs == original.srefs
                assert copy.texts == original.texts


class TestIdentify:
    def test_reference_fingerprints_distinct(self):
        for pdk_name in ("edu045", "edu130", "edu180"):
            pdk = get_pdk(pdk_name)
            table = reference_fingerprints(pdk)
            assert len(table) == len(pdk.library.cells)

    def test_fingerprint_ignores_label_texts(self, pdk):
        cell = pdk.library.cells["INV_X1"]
        label = pdk.layers.by_name("label").gds_layer
        a = cell_master_struct(cell, pdk)
        b = cell_master_struct(cell, pdk)
        for text in b.texts:
            if text.layer == label:
                text.text = "TOTALLY_DIFFERENT"
        exclude = frozenset((label,))
        assert master_fingerprint(a, exclude) == master_fingerprint(b, exclude)

    def test_renamed_masters_still_identified(self, counter_stack, pdk):
        mapped, _, data = counter_stack
        library = read_gds(data)
        renames = {}
        for index, struct in enumerate(library.structs):
            if struct.name == mapped.name:
                continue
            renames[struct.name] = f"obf_{index}"
            struct.name = f"obf_{index}"
        for struct in library.structs:
            for sref in struct.srefs:
                sref.struct_name = renames.get(sref.struct_name,
                                               sref.struct_name)
        top = library.struct(mapped.name)
        mapping, mismatches = identify_masters(library, top, pdk)
        assert not mismatches
        assert {cell.name for cell in mapping.values()} == {
            inst.cell.name for inst in mapped.cells
        }
        # ...and the full LVS run stays clean end to end.
        report = run_lvs(write_gds(library), mapped, pdk)
        assert report.clean, report.mismatches[:5]

    def test_tampered_master_flagged(self, counter_stack, pdk):
        mapped, _, data = counter_stack
        library = read_gds(data)
        victim = next(
            s for s in library.structs if s.name in pdk.library.cells
        )
        boundary = victim.boundaries[0]
        boundary.points = [(x + 2, y) for x, y in boundary.points]
        _, mismatches = identify_masters(
            library, library.struct(mapped.name), pdk
        )
        assert any("tampered" in m for m in mismatches)

    def test_infer_top(self, counter_stack):
        mapped, _, data = counter_stack
        assert infer_top(read_gds(data)).name == mapped.name


class TestExtraction:
    def test_counter_extracts_clean(self, counter_stack, pdk):
        mapped, _, data = counter_stack
        extraction = extract_netlist(data, pdk)
        assert extraction.clean, extraction.mismatches[:5]
        assert len(extraction.instances) == len(mapped.cells)
        used_nets = {
            net for inst in mapped.cells for net in inst.pins.values()
        } | {
            net for ports in (mapped.inputs, mapped.outputs)
            for nets in ports.values() for net in nets
        }
        assert extraction.n_nets == len(used_nets)
        assert set(extraction.ports) == (
            set(mapped.inputs) | set(mapped.outputs)
        )
        assert "cells" in extraction.summary()

    def test_every_pin_has_a_net(self, counter_stack, pdk):
        _, _, data = counter_stack
        for inst in extract_netlist(data, pdk).instances:
            expected = set(inst.cell.inputs)
            if inst.cell.output:
                expected.add(inst.cell.output)
            assert set(inst.pins) == expected

    def test_compare_accepts_self(self, counter_stack, pdk):
        mapped, _, data = counter_stack
        extraction = extract_netlist(data, pdk)
        mismatches, pairing = compare_netlists(extraction, mapped)
        assert not mismatches
        assert len(pairing) == len(mapped.cells)

    def test_foreign_geometry_is_floating(self, counter_stack, pdk):
        _, _, data = counter_stack
        library = read_gds(data)
        top = infer_top(library)
        top.add_rect_um(10, 1, 1.0, 1.0, 3.0, 1.002)  # stray met1 wire
        extraction = extract_netlist(library, pdk)
        assert any("floating" in m for m in extraction.mismatches)


class TestLvsReport:
    def test_json_roundtrip(self, counter_stack, pdk):
        mapped, _, data = counter_stack
        report = run_lvs(data, mapped, pdk)
        assert report.clean
        assert report.mode == "connectivity"
        assert report.lec_equivalent is True
        back = LvsReport.from_json(report.to_json())
        assert back.to_dict() == report.to_dict()
        assert back.clean

    def test_census_wrapper_still_works(self, counter_stack):
        _, design, data = counter_stack
        report = check_lvs(read_gds(data), design)
        assert report.clean
        assert report.mode == "census"
        assert "LVS CLEAN" in report.summary()

    def test_unreadable_stream_is_a_mismatch(self, counter_stack, pdk):
        mapped, _, _ = counter_stack
        report = run_lvs(b"\x00\x01garbage", mapped, pdk)
        assert not report.clean
        assert any("unreadable" in m for m in report.mismatches)


class TestTrojans:
    def test_every_kind_caught(self, counter_stack, pdk):
        mapped, _, data = counter_stack
        for kind in TROJAN_KINDS:
            mutant, description = mutate_gds(data, seed=0, kind=kind)
            report = run_lvs(mutant, mapped, pdk)
            assert not report.clean, f"{kind} not caught: {description}"
            assert kind in description

    def test_swap_cells_defeats_census_but_not_lvs(self, counter_stack, pdk):
        mapped, design, data = counter_stack
        mutant, _ = mutate_gds(data, seed=0, kind="swap_cells")
        census = check_lvs(read_gds(mutant), design)
        assert census.clean  # the census-invisible trojan...
        report = run_lvs(mutant, mapped, pdk)
        assert not report.clean  # ...is exactly what LVS v2 exists for

    def test_deterministic_per_seed(self, counter_stack):
        _, _, data = counter_stack
        assert mutate_gds(data, seed=3) == mutate_gds(data, seed=3)

    def test_unknown_kind_rejected(self, counter_stack):
        _, _, data = counter_stack
        with pytest.raises(ValueError):
            mutate_gds(data, kind="melt_the_chip")


class TestFlowIntegration:
    @pytest.fixture(scope="class")
    def flow_result(self, pdk):
        module = generate("gray_counter").module
        return run_flow(module, pdk, FlowOptions(extract_lvs=True))

    def test_flow_gate_populates_report(self, flow_result):
        assert flow_result.ok
        assert flow_result.lvs is not None
        assert flow_result.lvs.clean
        assert flow_result.lvs.lec_equivalent is True

    def test_result_json_fixed_point(self, flow_result):
        text = flow_result.to_json()
        assert FlowResult.from_json(text).to_json() == text

    def test_signoff_prefers_connectivity_verdict(self, flow_result):
        report = run_signoff(flow_result)
        item = next(i for i in report.items if i.name == "lvs_clean")
        assert item.passed
        assert "nets" in item.detail  # connectivity-grade summary

    def test_extract_spans_emitted(self, flow_result):
        names = {span.name for span in flow_result.trace}
        assert {"extract.lvs", "extract.identify", "extract.flatten",
                "extract.connect", "extract.compare",
                "extract.lec"} <= names


class TestCli:
    def test_clean_design_exits_zero(self, capsys):
        assert main(["lvs", "--ip", "lfsr", "--pdk", "edu130"]) == 0
        assert "LVS CLEAN" in capsys.readouterr().out

    def test_trojan_exits_one(self, capsys, tmp_path):
        path = tmp_path / "lvs.json"
        code = main([
            "lvs", "--ip", "lfsr", "--pdk", "edu130",
            "--trojan", "delete_via", "--json", str(path),
        ])
        assert code == 1
        report = LvsReport.from_json(path.read_text())
        assert not report.clean

    def test_usage_errors_exit_two(self, capsys):
        assert main(["lvs"]) == 2
        assert main(["lvs", "--ip", "no_such_ip"]) == 2
        assert main(["lvs", "--ip", "lfsr", "--trojan", "bogus"]) == 2
