"""Tests for geometry, the GDSII codec, chip assembly and DRC."""

import pytest

from repro.hdl import ModuleBuilder, mux
from repro.layout import (
    GdsLibrary,
    GdsSRef,
    GdsStruct,
    GdsText,
    Rect,
    bounding_box,
    build_chip_gds,
    check_drc,
    flatten_rects,
    from_db,
    read_gds,
    to_db,
    wire_rect,
    write_gds,
)
from repro.layout.gds import _parse_real8, _real8
from repro.pdk import get_pdk
from repro.pnr import implement
from repro.synth import synthesize


class TestGeometry:
    def test_basic_properties(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 4
        assert r.height == 2
        assert r.area == 8
        assert r.min_dimension == 2
        assert r.center == (2, 1)

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            Rect(2, 0, 0, 2)

    def test_intersects_excludes_touching(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(1, 1, 3, 3))
        assert not a.intersects(Rect(2, 0, 4, 2))  # shared edge
        assert not a.intersects(Rect(5, 5, 6, 6))

    def test_distance(self):
        a = Rect(0, 0, 1, 1)
        assert a.distance(Rect(4, 0, 5, 1)) == pytest.approx(3.0)
        assert a.distance(Rect(4, 5, 5, 6)) == pytest.approx(5.0)
        assert a.distance(Rect(0.5, 0.5, 2, 2)) == 0.0

    def test_grow_translate_union(self):
        a = Rect(1, 1, 2, 2)
        assert a.grown(1) == Rect(0, 0, 3, 3)
        assert a.translated(1, -1) == Rect(2, 0, 3, 1)
        assert a.union_bbox(Rect(5, 5, 6, 6)) == Rect(1, 1, 6, 6)

    def test_bounding_box(self):
        assert bounding_box([Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)]) == Rect(0, 0, 3, 3)
        with pytest.raises(ValueError):
            bounding_box([])

    def test_wire_rect(self):
        horizontal = wire_rect(0, 5, 10, 5, 1.0)
        assert horizontal == Rect(-0.5, 4.5, 10.5, 5.5)
        vertical = wire_rect(3, 0, 3, 8, 0.5)
        assert vertical == Rect(2.75, -0.25, 3.25, 8.25)
        with pytest.raises(ValueError):
            wire_rect(0, 0, 1, 1, 0.5)


class TestGdsCodec:
    def test_real8_roundtrip(self):
        for value in (0.0, 1.0, 0.001, 1e-9, 123.456, -42.5):
            encoded = _real8(value)
            assert len(encoded) == 8
            assert _parse_real8(encoded) == pytest.approx(value, rel=1e-12)

    def test_db_unit_conversion(self):
        assert to_db(1.234) == 1234
        assert from_db(1234) == pytest.approx(1.234)

    def test_library_roundtrip(self):
        library = GdsLibrary("testlib")
        cell = library.add(GdsStruct("cell"))
        cell.add_rect_um(1, 0, 0.0, 0.0, 2.5, 1.0)
        top = library.add(GdsStruct("top"))
        top.srefs.append(GdsSRef("cell", (to_db(10.0), to_db(20.0))))
        top.texts.append(GdsText(60, "pin_a", (0, 0)))
        top.add_rect_um(10, 0, 0.0, 0.0, 100.0, 100.0)

        data = write_gds(library)
        assert data[:4] == b"\x00\x06\x00\x02"  # HEADER record
        parsed = read_gds(data)
        assert parsed.name == "testlib"
        assert [s.name for s in parsed.structs] == ["cell", "top"]
        parsed_cell = parsed.struct("cell")
        assert parsed_cell.boundaries[0].layer == 1
        assert parsed_cell.boundaries[0].points[2] == (2500, 1000)
        parsed_top = parsed.struct("top")
        assert parsed_top.srefs[0].struct_name == "cell"
        assert parsed_top.srefs[0].position == (10000, 20000)
        assert parsed_top.texts[0].text == "pin_a"

    def test_truncated_stream_rejected(self):
        library = GdsLibrary("x")
        library.add(GdsStruct("s"))
        data = write_gds(library)
        with pytest.raises(ValueError):
            read_gds(data[:7] + b"\x01")

    def test_odd_length_names_padded(self):
        library = GdsLibrary("abc")  # odd length
        library.add(GdsStruct("wxy"))
        parsed = read_gds(write_gds(library))
        assert parsed.name == "abc"
        assert parsed.structs[0].name == "wxy"

    def test_flatten_rects_translates(self):
        library = GdsLibrary("lib")
        cell = library.add(GdsStruct("cell"))
        cell.add_rect_um(5, 0, 0, 0, 1, 1)
        top = library.add(GdsStruct("top"))
        top.srefs.append(GdsSRef("cell", (to_db(10), to_db(0))))
        rects = flatten_rects(library, "top")
        assert rects[5][0] == Rect(10, 0, 11, 1)


@pytest.fixture(scope="module")
def chip_design():
    pdk = get_pdk("edu130")
    b = ModuleBuilder("counter")
    en = b.input("en", 1)
    count = b.register("count", 8)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    mapped = synthesize(b.build(), pdk.library).mapped
    return implement(mapped, pdk), pdk


class TestChipAssembly:
    def test_gds_builds_and_roundtrips(self, chip_design):
        design, pdk = chip_design
        library = build_chip_gds(design)
        data = write_gds(library)
        assert len(data) > 500
        parsed = read_gds(data)
        assert parsed.struct("counter").srefs  # placed cells

    def test_every_cell_placed_in_gds(self, chip_design):
        design, pdk = chip_design
        library = build_chip_gds(design)
        top = library.struct("counter")
        assert len(top.srefs) == len(design.mapped.cells)

    def test_pin_labels_present(self, chip_design):
        design, pdk = chip_design
        top = build_chip_gds(design).struct("counter")
        texts = {t.text for t in top.texts}
        assert "en[0]" in texts
        assert "q[7]" in texts

    def test_die_outline_present(self, chip_design):
        design, pdk = chip_design
        top = build_chip_gds(design).struct("counter")
        outline_layer = pdk.layers.outline.gds_layer
        outlines = [b for b in top.boundaries if b.layer == outline_layer]
        assert len(outlines) == 1


class TestDrc:
    def test_generated_chip_is_clean(self, chip_design):
        design, pdk = chip_design
        library = build_chip_gds(design)
        report = check_drc(library, pdk.layers, "counter")
        assert report.clean, report.violations[:5]
        assert "CLEAN" in report.summary()

    def test_width_violation_detected(self, chip_design):
        design, pdk = chip_design
        library = build_chip_gds(design)
        met1 = pdk.layers.by_name("met1")
        sliver = met1.min_width_um / 3.0
        library.struct("counter").add_rect_um(
            met1.gds_layer, met1.gds_datatype, 0.0, 0.0, 10.0, sliver
        )
        report = check_drc(library, pdk.layers, "counter")
        assert any(v.rule == "min_width" for v in report.violations)

    def test_spacing_violation_detected(self, chip_design):
        design, pdk = chip_design
        library = build_chip_gds(design)
        met1 = pdk.layers.by_name("met1")
        w = met1.min_width_um
        gap = met1.min_spacing_um / 2.0
        top = library.struct("counter")
        # Two parallel wires far outside the real layout, too close together.
        top.add_rect_um(met1.gds_layer, 0, 1000.0, 1000.0, 1010.0, 1000.0 + w)
        top.add_rect_um(met1.gds_layer, 0, 1000.0, 1000.0 + w + gap,
                        1010.0, 1000.0 + 2 * w + gap)
        report = check_drc(library, pdk.layers, "counter")
        assert any(v.rule == "min_spacing" for v in report.violations)

    def test_overlapping_rects_are_not_spacing_violations(self, chip_design):
        design, pdk = chip_design
        library = GdsLibrary("t")
        top = library.add(GdsStruct("top"))
        met1 = pdk.layers.by_name("met1")
        w = met1.min_width_um * 4
        top.add_rect_um(met1.gds_layer, 0, 0, 0, 10, w)
        top.add_rect_um(met1.gds_layer, 0, 5, 0, 15, w)
        report = check_drc(library, pdk.layers, "top")
        assert report.clean
