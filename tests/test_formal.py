"""Tests for repro.formal: AIG, CNF, CDCL SAT, LEC and property proving."""

import itertools
import json
import random

import pytest

from repro.cli import main
from repro.core.flow import FlowError, run_flow
from repro.core.options import FlowOptions
from repro.core.signoff import run_signoff
from repro.formal import (
    Aig,
    CdclSolver,
    LecError,
    check_lec,
    from_gate_netlist,
    from_module,
    lec_flow,
    mutate_netlist,
    prove_facts,
    refine_lint_report,
    replay_counterexample,
    solve_cnf,
    tseitin,
)
from repro.formal.aig import FALSE, TRUE, word_value
from repro.hdl import ModuleBuilder, mux
from repro.hdl.ir import BinOp, Const, Module, Mux, Ref, UnaryOp
from repro.ip import catalogue, generate
from repro.lint import lint_module
from repro.pdk.pdks import get_pdk
from repro.synth import GateSimulator, MappedSimulator, lower, synthesize
from repro.synth.verify import check_equivalence, replay_mismatch


@pytest.fixture(scope="module")
def lib():
    return get_pdk("edu130").library


def build_counter(width: int = 4) -> Module:
    b = ModuleBuilder(f"cnt{width}")
    en = b.input("en", 1)
    count = b.register("count", width)
    count.next = mux(en, (count + 1).trunc(width), count)
    b.output("value", count)
    return b.build()


# -- AIG ---------------------------------------------------------------------


class TestAig:
    def test_structural_hashing_dedups(self):
        g = Aig()
        a = g.input_bit("a")
        b = g.input_bit("b")
        assert g.AND(a, b) == g.AND(a, b)
        assert g.AND(a, b) == g.AND(b, a)

    def test_constant_folding(self):
        g = Aig()
        a = g.input_bit("a")
        assert g.AND(a, TRUE) == a
        assert g.AND(a, FALSE) == FALSE
        assert g.AND(a, a) == a
        assert g.AND(a, g.NOT(a)) == FALSE
        assert g.XOR(a, a) == FALSE
        assert g.XOR(a, FALSE) == a

    def test_eval_matches_semantics(self):
        g = Aig()
        a = g.input_bit("a")
        b = g.input_bit("b")
        lits = [g.AND(a, b), g.OR(a, b), g.XOR(a, b), g.MUX(a, b, TRUE)]
        for va, vb in itertools.product((0, 1), repeat=2):
            got = g.eval_lits({"a": va, "b": vb}, lits)
            assert got == [va & vb, va | vb, va ^ vb, vb if va else 1]


def random_aig(seed: int, n_inputs: int = 6, n_nodes: int = 40):
    """A random AIG plus a reference evaluator over its input labels."""
    rng = random.Random(seed)
    g = Aig()
    pool = [g.input_bit(f"i{k}") for k in range(n_inputs)]
    for _ in range(n_nodes):
        a, b = rng.choice(pool), rng.choice(pool)
        if rng.random() < 0.5:
            a = g.NOT(a)
        if rng.random() < 0.5:
            b = g.NOT(b)
        pool.append(g.AND(a, b))
    root = pool[-1]
    return g, root


class TestSatVsTruthTable:
    """Property-based check: SAT verdicts agree with brute-force."""

    @pytest.mark.parametrize("seed", range(12))
    def test_miter_of_identical_logic_is_unsat(self, seed):
        g, root = random_aig(seed)
        # XOR(root, root) folds to FALSE structurally; rebuild the same
        # function from scratch instead so the solver has work to do.
        g2, root2 = random_aig(seed)
        cnf = tseitin(g, [root])
        result = solve_cnf(cnf, [(-cnf.lit(root),)])
        # Brute force: is there an assignment making root false?
        labels = [f"i{k}" for k in range(6)]
        expect = any(
            g.eval_lits(dict(zip(labels, bits)), [root]) == [0]
            for bits in itertools.product((0, 1), repeat=6)
        )
        assert result.is_sat == expect
        assert g2.stats() == g.stats()
        assert root2 == root  # same seed, same structure, same hash

    @pytest.mark.parametrize("seed", range(8))
    def test_satisfiability_matches_enumeration(self, seed):
        n = 5 + (seed % 6)  # up to 10 inputs
        g, root = random_aig(seed + 100, n_inputs=n, n_nodes=30 + 4 * n)
        labels = [f"i{k}" for k in range(n)]
        truth = [
            g.eval_lits(dict(zip(labels, bits)), [root])[0]
            for bits in itertools.product((0, 1), repeat=n)
        ]
        cnf = tseitin(g, [root])
        for value in (1, 0):
            unit = (cnf.lit(root),) if value else (-cnf.lit(root),)
            result = solve_cnf(cnf, [unit])
            assert result.is_sat == (value in truth)
            if result.is_sat:
                # The model must actually witness root == value.
                assignment = {
                    label: result.model.get(
                        cnf.var_of_node.get(g.input_bit(label) >> 1, 0), False
                    )
                    for label in labels
                }
                witnessed = g.eval_lits(
                    {k: int(v) for k, v in assignment.items()}, [root]
                )[0]
                assert witnessed == value


class TestSolverSanity:
    def test_empty_formula_is_sat(self):
        assert CdclSolver([], 3).solve().is_sat

    def test_empty_clause_is_unsat(self):
        assert CdclSolver([()], 1).solve().is_unsat

    def test_unit_clauses_propagate(self):
        result = CdclSolver([(1,), (-1, 2), (-2, 3)], 3).solve()
        assert result.is_sat
        assert result.model[1] and result.model[2] and result.model[3]

    def test_contradictory_units_unsat(self):
        assert CdclSolver([(1,), (-1,)], 1).solve().is_unsat

    def test_pure_literal_formula(self):
        # 2 appears only positively; any solution must be found anyway.
        result = CdclSolver([(1, 2), (-1, 2)], 2).solve()
        assert result.is_sat
        assert result.model[2]

    def test_small_pigeonhole_unsat(self):
        # 3 pigeons, 2 holes: vars p*2+h+1 means pigeon p in hole h.
        clauses = []
        for p in range(3):
            clauses.append((p * 2 + 1, p * 2 + 2))
        for h in (1, 2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    clauses.append((-(p1 * 2 + h), -(p2 * 2 + h)))
        assert CdclSolver(clauses, 6).solve().is_unsat

    def test_conflict_budget_yields_unknown(self):
        # A hard-enough pigeonhole with a 1-conflict budget must give up.
        n = 5
        clauses = []
        for p in range(n + 1):
            clauses.append(tuple(p * n + h + 1 for h in range(n)))
        for h in range(n):
            for p1 in range(n + 1):
                for p2 in range(p1 + 1, n + 1):
                    clauses.append((-(p1 * n + h + 1), -(p2 * n + h + 1)))
        result = CdclSolver(clauses, (n + 1) * n).solve(max_conflicts=1)
        assert result.status == "unknown"
        assert not result.is_sat and not result.is_unsat


# -- cone construction -------------------------------------------------------


class TestCones:
    def test_module_and_netlist_agree(self):
        module = build_counter()
        cones = from_module(module)
        netlist_cones = from_gate_netlist(lower(module), cones.aig)
        assert set(cones.outputs) == set(netlist_cones.outputs)
        assert set(cones.next_state) == set(netlist_cones.next_state)
        # Shared AIG + structural hashing: honest lowering collapses the
        # cones onto the very same nodes.
        for name, lits in cones.outputs.items():
            assert lits == netlist_cones.outputs[name]

    def test_word_value_roundtrip(self):
        module = build_counter()
        cones = from_module(module)
        value = word_value(
            cones.aig,
            {"en[0]": 1, "count[0]": 1, "count[2]": 1},  # en=1, count=5
            cones.next_state["count"],
        )
        assert value == 6


# -- LEC ---------------------------------------------------------------------


class TestLec:
    def test_catalogue_proves_clean(self, lib):
        for name in catalogue():
            module = generate(name).module
            synth = synthesize(module, lib)
            report = lec_flow(module, synth)
            assert report.passed, f"{name}: {report.summary()}"
            for check in report.checks.values():
                assert check.equivalent
                assert not check.counterexamples

    def test_correspondence_error_on_port_mismatch(self, lib):
        module = build_counter()
        other = synthesize(build_counter(5), lib).mapped
        with pytest.raises(LecError):
            check_lec(module, other)

    def test_mutation_must_fail_and_replay(self, lib):
        """The classic LEC self-test, end to end."""
        module = build_counter()
        synth = synthesize(module, lib)
        found = 0
        for seed in range(12):
            mutant, description = mutate_netlist(synth.mapped, seed=seed)
            result = check_lec(module, mutant)
            if result.equivalent:
                continue  # benign rewire (redundant logic)
            found += 1
            for cex in result.counterexamples:
                mismatch = replay_counterexample(module, mutant, cex)
                assert mismatch is not None, (
                    f"{description}: formal counterexample does not "
                    f"reproduce in simulation: {cex}"
                )
        assert found, "no mutation seed produced a detectable fault"

    def test_mutated_gate_netlist_fails(self, lib):
        module = build_counter()
        synth = synthesize(module, lib)
        found = False
        for seed in range(12):
            mutant, _ = mutate_netlist(synth.netlist, seed=seed)
            result = check_lec(module, mutant)
            if not result.equivalent:
                found = True
                assert result.counterexamples
                break
        assert found

    def test_report_json_roundtrip(self, lib):
        module = build_counter()
        synth = synthesize(module, lib)
        report = lec_flow(module, synth)
        data = json.loads(report.to_json())
        assert data["passed"] is True
        assert set(data["checks"]) == {
            "post_synthesis", "post_opt", "post_mapping"
        }


# -- verify.py: recorded mismatches + replay ---------------------------------


class TestEquivalenceMismatches:
    def test_mismatch_records_stimulus_and_state(self, lib):
        module = build_counter()
        synth = synthesize(module, lib)
        mutant, _ = mutate_netlist(synth.mapped, seed=0)
        result = check_equivalence(module, mutant, cycles=64, seed=11)
        assert not result.passed
        assert result.seed == 11
        first = result.mismatches[0]
        assert set(first.inputs) == {"en"}
        assert "count" in first.state
        # The recorded vector replays to the same disagreement.
        replayed = replay_mismatch(module, mutant, first)
        assert replayed is not None
        assert replayed.output == first.output
        assert replayed.expect == first.expect

    def test_result_json_roundtrip(self, lib):
        module = build_counter()
        synth = synthesize(module, lib)
        mutant, _ = mutate_netlist(synth.mapped, seed=0)
        result = check_equivalence(module, mutant, cycles=32, seed=3)
        from repro.synth.verify import EquivalenceResult

        back = EquivalenceResult.from_json(result.to_json())
        assert back.passed == result.passed
        assert back.seed == result.seed
        assert [str(m) for m in back.mismatches] == [
            str(m) for m in result.mismatches
        ]

    def test_seed_changes_stimulus(self, lib):
        module = build_counter()
        mapped = synthesize(module, lib).mapped
        assert check_equivalence(module, mapped, cycles=16, seed=1).passed
        assert check_equivalence(module, mapped, cycles=16, seed=2).passed


# -- property proving + lint refinement --------------------------------------


def build_prop_module() -> Module:
    m = Module("propdemo")
    a = m.add_input("a", 4)
    y = m.add_output("y", 4)
    z = m.add_output("z", 4)
    w = m.add_output("w", 4)
    # Syntactic constant select: lint flags it, SAT should prove it.
    m.assign(y, Mux(Const(1, 1), Ref(a), Const(0, 4)))
    # Semantic constant select (a & ~a != 0): invisible to lint.
    dead = BinOp("and", Ref(a), UnaryOp("not", Ref(a)))
    m.assign(z, Mux(BinOp("ne", dead, Const(0, 4)), Const(5, 4), Ref(a)))
    # Semantically constant net: a ^ a == 0.
    m.assign(w, BinOp("xor", Ref(a), Ref(a)))
    m.validate()
    return m


class TestProps:
    def test_prove_facts_verdicts(self):
        facts = {
            (f.kind, f.location): f for f in prove_facts(build_prop_module())
        }
        assert facts[("const-net", "w")].proved
        assert facts[("const-net", "w")].value == 0
        assert not facts[("const-net", "y")].proved
        assert facts[("mux-select-const", "y")].proved
        assert facts[("mux-select-const", "y")].value == 1
        assert facts[("mux-select-const", "z")].proved
        assert facts[("mux-select-const", "z")].value == 0

    def test_refinement_promotes_proved_findings(self):
        module = build_prop_module()
        report = lint_module(module)
        before = {f.location: f.severity for f in report.findings
                  if f.rule == "rtl.dead-mux-arm"}
        assert before == {"y": "warning"}
        refined = refine_lint_report(report, prove_facts(module))
        after = {f.location: f for f in refined.findings
                 if f.rule == "rtl.dead-mux-arm"}
        assert after["y"].severity == "error"
        assert "SAT-proved" in after["y"].message

    def test_refinement_drops_refuted_findings(self):
        # A toggling mux select that lint would flag if it were Const;
        # fake the finding and check the refuted fact drops it.
        from repro.lint.core import Finding, LintReport

        module = build_prop_module()
        facts = prove_facts(module)
        report = LintReport(findings=[
            Finding("rtl.const-expr", "info", module.name, "y", "suspect"),
            Finding("rtl.undriven", "error", module.name, "q", "unrelated"),
        ])
        refined = refine_lint_report(report, facts)
        rules = [f.rule for f in refined.findings]
        assert "rtl.const-expr" not in rules  # y toggles: refuted, dropped
        assert "rtl.undriven" in rules  # no formal opinion: untouched


# -- flow + signoff + CLI integration ----------------------------------------


class TestFlowIntegration:
    def test_flow_records_lec_report(self):
        module = build_counter()
        result = run_flow(
            module, get_pdk("edu130"), FlowOptions(formal_lec=True, seed=5)
        )
        assert result.ok
        assert result.lec is not None and result.lec.passed
        assert result.lec.design == module.name

    def test_flow_without_knob_skips_lec(self):
        result = run_flow(build_counter(), get_pdk("edu130"), FlowOptions())
        assert result.lec is None

    def test_signoff_gains_lec_item(self):
        result = run_flow(
            build_counter(), get_pdk("edu130"), FlowOptions(formal_lec=True)
        )
        report = run_signoff(result)
        item = next(i for i in report.items if i.name == "lec_clean")
        assert item.passed and item.waivable
        assert "PROVED" in item.detail

    def test_flow_fails_on_lec_counterexample(self, monkeypatch):
        import repro.core.flow as flow_mod
        from repro.formal.lec import LecReport

        class FailingReport:
            passed = False

            def summary(self):
                return "lec FAILED for cnt4: post_opt=counterexample"

        monkeypatch.setattr(
            flow_mod, "lec_flow", lambda *a, **k: FailingReport()
        )
        with pytest.raises(FlowError, match="LEC failed"):
            run_flow(
                build_counter(), get_pdk("edu130"),
                FlowOptions(formal_lec=True),
            )


class TestProveCli:
    def test_prove_clean_ip(self, capsys):
        assert main(["prove", "--ip", "counter"]) == 0
        out = capsys.readouterr().out
        assert "PROVED" in out

    def test_prove_json_report(self, capsys, tmp_path):
        path = tmp_path / "lec.json"
        assert main(["prove", "--ip", "alu", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["passed"] is True

    def test_prove_json_stdout(self, capsys):
        assert main(["prove", "--ip", "counter", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["design"] == "counter8"

    def test_prove_unknown_ip_usage_error(self, capsys):
        assert main(["prove", "--ip", "nope"]) == 2

    def test_prove_missing_target_usage_error(self, capsys):
        assert main(["prove"]) == 2

    def test_lint_formal_flag(self, capsys):
        assert main(["lint", "--ip", "counter", "--formal"]) == 0
