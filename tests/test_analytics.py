"""Tests for the analytics models (value chain, cost, workforce, MPW)."""

import pytest

from repro.analytics import (
    SCENARIOS,
    Interventions,
    PipelineParams,
    abstraction_gap,
    affordable_node_nm,
    capture_if_design_share,
    chips_per_budget,
    cost_table,
    course_fit_table,
    design_cost,
    design_cost_usd,
    design_gap_table,
    economics_table,
    europe_value_capture,
    instructions_per_python_line,
    largest_segments,
    max_line_expansion,
    mean_gates_per_line,
    measure_gates_per_line,
    measure_hls_productivity,
    required_graduate_multiplier,
    scenario_table,
    segment,
    simulate_pipeline,
    uplift_per_segment,
)
from repro.hdl import ModuleBuilder, mux
from repro.pdk import get_pdk


class TestValueChain:
    def test_paper_numbers_encoded(self):
        assert segment("chip_design").value_share == pytest.approx(0.30)
        assert segment("chip_design").europe_share == pytest.approx(0.10)
        assert segment("fabrication").value_share == pytest.approx(0.34)
        assert segment("fabrication").europe_share == pytest.approx(0.08)
        assert segment("equipment").europe_share == pytest.approx(0.40)
        assert segment("materials").europe_share == pytest.approx(0.20)

    def test_shares_sum_to_one(self):
        from repro.analytics import SEGMENTS

        assert sum(s.value_share for s in SEGMENTS) == pytest.approx(1.0)

    def test_design_and_fab_are_largest(self):
        assert set(largest_segments(2)) == {"chip_design", "fabrication"}

    def test_europe_capture_around_cited_level(self):
        # Europe's overall semiconductor share is ~10% in the cited studies.
        capture = europe_value_capture()
        assert 0.08 < capture < 0.16

    def test_design_uplift_moves_total(self):
        base = europe_value_capture()
        lifted = capture_if_design_share(0.20)
        assert lifted - base == pytest.approx(0.30 * 0.10, abs=1e-9)

    def test_uplift_ranking_follows_value_share(self):
        uplift = uplift_per_segment(0.05)
        assert uplift["fabrication"] > uplift["chip_design"] > uplift["materials"]

    def test_gap_table_shape(self):
        rows = design_gap_table()
        assert len(rows) == 7
        design_row = next(r for r in rows if r["segment"] == "chip_design")
        assert design_row["gap_to_target"] == pytest.approx(0.10)

    def test_unknown_segment(self):
        with pytest.raises(KeyError):
            segment("quantum")


class TestCostModel:
    def test_calibration_points_exact(self):
        assert design_cost_usd(130.0) == pytest.approx(5e6, rel=1e-9)
        assert design_cost_usd(2.0) == pytest.approx(725e6, rel=1e-9)

    def test_monotone_decreasing_with_feature(self):
        costs = [design_cost_usd(n) for n in (180, 130, 65, 28, 7, 2)]
        assert costs == sorted(costs)

    def test_interpolated_nodes_plausible(self):
        # Industry folklore: ~$30-80M at 28 nm, ~$150-350M at 5 nm.
        assert 20e6 < design_cost_usd(28.0) < 90e6
        assert 150e6 < design_cost_usd(5.0) < 350e6

    def test_breakdown_sums_to_total(self):
        cost = design_cost(28.0)
        assert sum(cost.breakdown_usd.values()) == pytest.approx(
            cost.total_usd, rel=1e-6
        )

    def test_verification_share_grows_at_advanced_nodes(self):
        old = design_cost(130.0)
        new = design_cost(2.0)
        share_old = old.breakdown_usd["verification"] / old.total_usd
        share_new = new.breakdown_usd["verification"] / new.total_usd
        assert share_new > share_old

    def test_cost_table(self):
        rows = cost_table()
        assert rows[0]["node_nm"] == 180
        assert rows[-1]["cost_musd"] == pytest.approx(725.0, rel=1e-3)

    def test_affordable_node_inverts(self):
        node = affordable_node_nm(design_cost_usd(45.0))
        assert node == pytest.approx(45.0, rel=1e-6)

    def test_academic_budget_buys_old_nodes_only(self):
        # A 500k EUR research project cannot afford sub-100nm full designs.
        assert affordable_node_nm(5e5) > 100.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            design_cost_usd(0.0)
        with pytest.raises(ValueError):
            affordable_node_nm(-1.0)


class TestProductivity:
    @pytest.fixture(scope="class")
    def library(self):
        return get_pdk("edu130").library

    def make_designs(self):
        designs = []
        b = ModuleBuilder("cnt")
        en = b.input("en", 1)
        c = b.register("c", 8)
        c.next = mux(en, c + 1, c)
        b.output("q", c)
        designs.append(b.build())

        b = ModuleBuilder("addsub")
        a = b.input("a", 8)
        x = b.input("x", 8)
        s = b.input("s", 1)
        b.output("y", mux(s, (a - x).trunc(8), (a + x).trunc(8)))
        designs.append(b.build())
        return designs

    def test_gates_per_line_in_paper_band(self, library):
        records = measure_gates_per_line(self.make_designs(), library)
        mean = mean_gates_per_line(records)
        assert 1.0 < mean < 40.0  # paper band 5-20, wide tolerance

    def test_python_line_expansion(self):
        assert instructions_per_python_line("y = a + b") == 4.0
        assert max_line_expansion("vadd(c, a, b, 500)") == 2000

    def test_abstraction_gap(self, library):
        gap = abstraction_gap(
            self.make_designs(), library, "vadd(c, a, b, 1000)"
        )
        assert gap.instructions_per_python_line > 100
        assert gap.ratio > 10  # software lines expand much further

    def test_hls_productivity(self, library):
        def mac(a, b, c):
            return a * b + c

        record = measure_hls_productivity(mac, library, width=8)
        assert record.rtl_lines_per_hls_line > 2
        assert record.gate_count > 0
        assert record.latency_cycles >= 2


class TestWorkforce:
    def test_baseline_gap_grows(self):
        result = simulate_pipeline()
        assert result.records[-1].gap > result.records[0].gap * 0.8
        assert result.final_gap > 0

    def test_coordinated_beats_single_levers(self):
        rows = {r["scenario"]: r["final_gap"] for r in scenario_table()}
        assert rows["coordinated"] < rows["outreach_only"]
        assert rows["coordinated"] < rows["campaigns_only"]
        assert rows["coordinated"] < rows["funding_only"]
        assert rows["coordinated"] < rows["baseline"]

    def test_interventions_ramp(self):
        fast = simulate_pipeline(
            interventions=Interventions(outreach=2.0, ramp_years=0)
        )
        slow = simulate_pipeline(
            interventions=Interventions(outreach=2.0, ramp_years=5)
        )
        assert fast.records[1].new_graduates >= slow.records[1].new_graduates

    def test_graduation_rate_capped(self):
        result = simulate_pipeline(
            interventions=Interventions(funding=5.0, ramp_years=0)
        )
        assert result.records[0].new_graduates > 0

    def test_required_multiplier_reasonable(self):
        multiplier = required_graduate_multiplier()
        assert 1.0 < multiplier < 50.0

    def test_scenarios_registry(self):
        assert "baseline" in SCENARIOS and "coordinated" in SCENARIOS

    def test_year_lookup(self):
        result = simulate_pipeline(start_year=2025, years=3)
        assert result.year(2026).year == 2026
        with pytest.raises(KeyError):
            result.year(2050)

    def test_custom_params(self):
        params = PipelineParams(demand_growth=0.0, initial_demand=40_000.0)
        result = simulate_pipeline(params)
        assert result.gap_closed_year() is not None


class TestMpwEconomics:
    def test_sharing_factor_ordering(self):
        rows = {r.pdk: r for r in economics_table()}
        assert rows["edu045"].mask_set_eur > rows["edu130"].mask_set_eur
        for row in rows.values():
            assert row.sharing_factor > 10

    def test_chips_per_budget(self):
        pdk = get_pdk("edu130")
        base = chips_per_budget(20_000.0, pdk)
        sponsored = chips_per_budget(20_000.0, pdk, subsidy_fraction=0.5)
        assert sponsored >= 2 * base - 1
        assert chips_per_budget(1e3, pdk, subsidy_fraction=1.0) > 1e6

    def test_subsidy_validation(self):
        with pytest.raises(ValueError):
            chips_per_budget(1e4, get_pdk("edu130"), subsidy_fraction=1.5)

    def test_course_fit_table(self):
        rows = course_fit_table()
        semester = [r for r in rows if r.timebox == "semester_course"]
        # The paper's claim: no node returns silicon within a course.
        assert all(not r.fits for r in semester)
        phd = [r for r in rows if r.timebox == "phd_project_phase"]
        assert all(r.fits for r in phd)
