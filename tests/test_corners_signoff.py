"""Tests for multi-corner STA and the tapeout signoff checklist."""

import pytest

from repro.core import OPEN, FlowOptions, run_flow
from repro.core.signoff import run_signoff
from repro.hdl import ModuleBuilder, mux
from repro.pdk import get_pdk
from repro.sta.corners import (
    FF,
    SS,
    TT,
    Corner,
    derated_node,
    multi_corner_analysis,
)
from repro.synth import synthesize


@pytest.fixture(scope="module")
def datapath_mapped():
    b = ModuleBuilder("dp")
    a = b.input("a", 8)
    c = b.input("c", 8)
    acc = b.register("acc", 16)
    acc.next = (acc + a * c).trunc(16)
    b.output("y", acc)
    return synthesize(b.build(), get_pdk("edu130").library).mapped


@pytest.fixture(scope="module")
def counter_flow():
    b = ModuleBuilder("snf")
    en = b.input("en", 1)
    count = b.register("count", 6)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    return run_flow(b.build(), get_pdk("edu130"),
                    FlowOptions(preset=OPEN, clock_period_ps=5_000.0))


class TestCorners:
    def test_derates_ordering(self, datapath_mapped):
        report = multi_corner_analysis(
            datapath_mapped, get_pdk("edu130").node, 5_000.0
        )
        # SS is slower than TT is slower than FF.
        assert (report.reports["ss"].wns_ps
                < report.reports["tt"].wns_ps
                < report.reports["ff"].wns_ps)

    def test_setup_and_hold_corner_selection(self, datapath_mapped):
        report = multi_corner_analysis(
            datapath_mapped, get_pdk("edu130").node, 5_000.0
        )
        assert report.setup_corner == "ss"
        assert report.hold_corner == "ff"
        assert report.signoff_fmax_mhz == min(
            r.fmax_mhz for r in report.reports.values()
        )

    def test_met_requires_slow_corner(self, datapath_mapped):
        node = get_pdk("edu130").node
        # Pick a period that passes at TT but fails at SS.
        from repro.sta import TimingAnalyzer

        tt_min = TimingAnalyzer(datapath_mapped, node).minimum_period_ps()
        period = tt_min * 1.05  # 5% margin: not enough for a 20% derate
        report = multi_corner_analysis(datapath_mapped, node, period)
        assert report.reports["tt"].wns_ps >= 0
        assert not report.met
        assert "VIOLATED" in report.summary()

    def test_derated_node_values(self):
        node = get_pdk("edu130").node
        slow = derated_node(node, SS)
        fast = derated_node(node, FF)
        assert slow.inv_intrinsic_ps > node.inv_intrinsic_ps > fast.inv_intrinsic_ps
        assert slow.name.endswith("_ss")

    def test_custom_corner_validation(self):
        with pytest.raises(ValueError):
            Corner("bad", delay_derate=0.0)
        with pytest.raises(ValueError):
            multi_corner_analysis(None, None, 1.0, corners=())

    def test_tt_matches_plain_sta(self, datapath_mapped):
        from repro.sta import TimingAnalyzer

        node = get_pdk("edu130").node
        plain = TimingAnalyzer(datapath_mapped, node).analyze(5_000.0)
        report = multi_corner_analysis(
            datapath_mapped, node, 5_000.0, corners=(TT,)
        )
        assert report.reports["tt"].wns_ps == pytest.approx(
            plain.wns_ps, abs=1e-6
        )


class TestSignoff:
    def test_clean_flow_is_ready(self, counter_flow):
        report = run_signoff(counter_flow)
        assert report.ready_for_tapeout, report.summary()
        assert "READY" in report.summary()
        names = {item.name for item in report.items}
        assert {"logic_equivalence", "drc_clean", "setup_timing",
                "multi_corner_timing", "gds_generated"} <= names

    def test_timing_failure_blocks(self):
        b = ModuleBuilder("fast")
        a = b.input("a", 8)
        c = b.input("c", 8)
        acc = b.register("acc", 16)
        acc.next = (acc + a * c).trunc(16)
        b.output("y", acc)
        result = run_flow(
            b.build(), get_pdk("edu130"),
            FlowOptions(preset=OPEN, clock_period_ps=100.0,
                        strict_drc=False),
        )
        report = run_signoff(result)
        assert not report.ready_for_tapeout
        failing = {item.name for item in report.failures}
        assert "setup_timing" in failing

    def test_waiver_unblocks_waivable_item(self):
        b = ModuleBuilder("fast2")
        a = b.input("a", 8)
        c = b.input("c", 8)
        acc = b.register("acc", 16)
        acc.next = (acc + a * c).trunc(16)
        b.output("y", acc)
        result = run_flow(
            b.build(), get_pdk("edu130"),
            FlowOptions(preset=OPEN, clock_period_ps=100.0,
                        strict_drc=False),
        )
        report = run_signoff(
            result,
            waivers={"setup_timing", "multi_corner_timing"},
        )
        assert report.ready_for_tapeout

    def test_die_budget_check(self, counter_flow):
        generous = run_signoff(counter_flow, max_die_area_mm2=10.0,
                               check_corners=False)
        assert generous.ready_for_tapeout
        tight = run_signoff(counter_flow, max_die_area_mm2=1e-9,
                            check_corners=False)
        assert not tight.ready_for_tapeout
        assert any(i.name == "die_area_budget" for i in tight.failures)

    def test_equivalence_cannot_be_waived(self, counter_flow):
        # Forge a failing equivalence and try to waive it.
        class Fake:
            passed = False
            mismatches = []

        original = counter_flow.synthesis.equivalence
        counter_flow.synthesis.equivalence = Fake()
        try:
            report = run_signoff(counter_flow, waivers={"logic_equivalence"},
                                 check_corners=False)
            assert not report.ready_for_tapeout
            assert report.unwaivable_failures
        finally:
            counter_flow.synthesis.equivalence = original


class TestSignoffLint:
    def test_lint_clean_item_present_and_passing(self, counter_flow):
        report = run_signoff(counter_flow, check_corners=False)
        items = {item.name: item for item in report.items}
        assert "lint_clean" in items
        assert items["lint_clean"].passed
        assert "0 errors" in items["lint_clean"].detail

    def test_unwaived_lint_failure_blocks_signoff(self, counter_flow):
        from repro.lint import Finding, LintReport

        original = counter_flow.lint
        counter_flow.lint = LintReport(findings=[
            Finding("rtl.undriven", "error", "snf", "q", "forged")
        ])
        try:
            report = run_signoff(counter_flow, check_corners=False)
            assert not report.ready_for_tapeout
            assert any(i.name == "lint_clean" for i in report.failures)
        finally:
            counter_flow.lint = original

    def test_waived_lint_failure_passes_signoff(self, counter_flow):
        from repro.lint import Finding, LintReport

        original = counter_flow.lint
        counter_flow.lint = LintReport(findings=[
            Finding("rtl.undriven", "error", "snf", "q", "forged")
        ])
        try:
            report = run_signoff(counter_flow, waivers={"lint_clean"},
                                 check_corners=False)
            assert report.ready_for_tapeout
            assert not report.failures
        finally:
            counter_flow.lint = original

    def test_lint_waiver_inside_report_also_passes(self, counter_flow):
        # Waiving the finding itself (lint-level waiver) rather than the
        # checklist item (signoff-level waiver) also restores readiness.
        from repro.lint import Finding, LintReport, Waiver

        original = counter_flow.lint
        counter_flow.lint = LintReport(
            findings=[
                Finding("rtl.undriven", "error", "snf", "q", "forged")
            ],
            waivers=(Waiver("rtl.undriven", reason="accepted"),),
        )
        try:
            report = run_signoff(counter_flow, check_corners=False)
            items = {item.name: item for item in report.items}
            assert items["lint_clean"].passed
            assert report.ready_for_tapeout
        finally:
            counter_flow.lint = original

    def test_signoff_lints_on_demand_when_flow_skipped_it(self, counter_flow):
        original = counter_flow.lint
        counter_flow.lint = None
        try:
            report = run_signoff(counter_flow, check_corners=False)
            items = {item.name: item for item in report.items}
            assert items["lint_clean"].passed
        finally:
            counter_flow.lint = original
