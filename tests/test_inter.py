"""Tests for the interactive edit loop (repro.inter).

Covers the dirty-set oracle's edge cases, the Workspace session API's
guarantees (clean edits, incremental edits, fallback, byte identity with
a from-scratch rebuild), the cone-limited LEC's must-fail guard against
seeded netlist mutations, the replay router's divergence accounting, and
the composed SoC catalogue entry the benchmark edits.
"""

import pytest

from repro.core import FlowOptions
from repro.formal import check_lec
from repro.formal.lec import mutate_netlist
from repro.hdl import ModuleBuilder, parse_verilog, to_verilog
from repro.inter import (
    InterError,
    Workspace,
    content_hash,
    dirty_cones,
    dirty_modules,
    module_keys,
    module_table,
    substitute_module,
)
from repro.inter.replay import _Divergence
from repro.ip import make_counter, make_pwm, make_seven_seg, make_soc
from repro.ip.soc import sevenseg_recode_rtl
from repro.pdk import get_pdk
from repro.pnr.hier import ROUTABILITY, hier_utilization

OPTIONS = FlowOptions(clock_period_ps=4_000.0)


def build_minisoc():
    counter = make_counter(width=8).module
    seven = make_seven_seg().module
    pwm = make_pwm(width=8).module
    b = ModuleBuilder("minisoc")
    en = b.input("en", 1)
    load = b.input("load", 1)
    value = b.input("value", 8)
    cnt = b.instance("u_cnt", counter, en=en, load=load, value=value)
    led = b.instance("u_pwm", pwm, duty=cnt["q"])
    seg = b.instance("u_seg", seven, digit=cnt["q"][3:0])
    b.output("led", led["out"])
    b.output("segments", seg["segments"])
    b.output("count", cnt["q"])
    return b.build()


def reparse(design, module_name, new_rtl):
    """Parse ``new_rtl`` against the design's other modules."""
    known = {
        name: module
        for name, module in module_table(design).items()
        if name != module_name
    }
    return parse_verilog(new_rtl, known=known)


@pytest.fixture(scope="module")
def warm():
    """One open workspace shared by the read-only tests."""
    return Workspace.open(build_minisoc(), get_pdk("edu130"),
                          options=OPTIONS)


class TestDirtySet:
    """Satellite: hashing edge cases behind the dirty-set oracle."""

    def test_comment_and_whitespace_edit_is_clean(self):
        design = build_minisoc()
        rtl = to_verilog(module_table(design)["pwm8"])
        noisy = "// tuning notes\n" + rtl.replace("\n", "\n\n") + "\n  \n"
        edited = reparse(design, "pwm8", noisy)
        assert content_hash(edited) == content_hash(
            module_table(design)["pwm8"]
        )
        new_top = substitute_module(design, "pwm8", edited)
        assert dirty_modules(module_keys(design), module_keys(new_top)) \
            == set()

    def test_leaf_logic_change_ripples_to_parent_only(self):
        design = build_minisoc()
        edited = reparse(
            design, "counter8",
            to_verilog(make_counter(width=8, step=3).module),
        )
        new_top = substitute_module(design, "counter8", edited)
        dirty = dirty_modules(module_keys(design), module_keys(new_top))
        # The edited leaf and its instantiating parent — nothing else.
        assert dirty == {"counter8", "minisoc"}

    def test_module_rename_dirties_instantiating_parent(self):
        design = build_minisoc()
        rtl = to_verilog(module_table(design)["counter8"])
        renamed = reparse(
            design, "counter8",
            rtl.replace("module counter8", "module counter8b"),
        )
        assert renamed.name == "counter8b"
        new_top = substitute_module(design, "counter8", renamed)
        dirty = dirty_modules(module_keys(design), module_keys(new_top))
        assert "counter8b" in dirty
        assert "minisoc" in dirty

    def test_parameter_change_ripples_through_module_key(self):
        # Same generator, different parameter: a new content hash in the
        # leaf must change every ancestor's ripple-aware key.
        design = build_minisoc()
        edited = reparse(
            design, "pwm8", to_verilog(make_pwm(width=8).module).replace(
                "pwm8", "pwm8"
            ),
        )
        assert dirty_modules(
            module_keys(design),
            module_keys(substitute_module(design, "pwm8", edited)),
        ) == set()
        wider = make_pwm(width=9).module
        keys_a = module_keys(design)
        b = ModuleBuilder("minisoc")
        en = b.input("en", 1)
        load = b.input("load", 1)
        value = b.input("value", 8)
        cnt = b.instance(
            "u_cnt", make_counter(width=8).module,
            en=en, load=load, value=value,
        )
        led = b.instance("u_pwm", wider, duty=cnt["q"])
        seg = b.instance(
            "u_seg", make_seven_seg().module, digit=cnt["q"][3:0]
        )
        b.output("led", led["out"])
        b.output("segments", seg["segments"])
        b.output("count", cnt["q"])
        dirty = dirty_modules(keys_a, module_keys(b.build()))
        assert "minisoc" in dirty

    def test_duplicate_module_names_rejected(self):
        b = ModuleBuilder("top")
        x = b.input("x", 1)
        left = ModuleBuilder("leaf")
        a = left.input("a", 1)
        left.output("y", ~a)
        right = ModuleBuilder("leaf")
        c = right.input("a", 1)
        right.output("y", c)
        l = b.instance("u_l", left.build(), a=x)
        r = b.instance("u_r", right.build(), a=x)
        b.output("y", l["y"] ^ r["y"])
        with pytest.raises(InterError, match="named 'leaf'"):
            module_table(b.build())


class TestWorkspace:
    def test_open_runs_full_flow(self, warm):
        assert warm.result.ok
        assert warm.result.gds_bytes is not None
        assert warm.opts.preset.placer == "hier"
        assert warm.edits == 0 and warm.fallbacks == 0

    def test_open_rejects_formal_lec_and_foreign_sessions(self):
        with pytest.raises(ValueError, match="formal_lec"):
            Workspace.open(
                build_minisoc(), get_pdk("edu130"),
                options=OPTIONS.replace(formal_lec=True),
            )

    def test_clean_edit_keeps_committed_result(self, warm):
        before = warm.result
        rtl = warm.rtl_of("sevenseg")
        report = warm.edit("sevenseg", "// still the same\n" + rtl)
        assert report.clean
        assert report.dirty == ()
        assert report.lec is None
        assert report.result is before

    def test_unknown_module_rejected(self, warm):
        with pytest.raises(KeyError, match="nonesuch"):
            warm.edit("nonesuch", "module nonesuch(); endmodule")

    def test_incremental_edit_is_proved_and_byte_identical(self):
        ws = Workspace.open(build_minisoc(), get_pdk("edu130"),
                            options=OPTIONS)
        new_rtl = to_verilog(make_counter(width=8, step=3).module)
        report = ws.edit("counter8", new_rtl)
        assert not report.clean
        assert report.fallback is None
        assert set(report.dirty) == {"counter8", "minisoc"}
        assert report.cones
        assert report.lec is not None and report.lec.equivalent
        assert ws.result is report.result
        assert ws.edits == 1 and ws.fallbacks == 0

        # A from-scratch rebuild of the edited tree must agree byte for
        # byte — incremental speed may not buy a different answer.
        cold = Workspace.open(ws.design, get_pdk("edu130"),
                              options=OPTIONS)
        assert report.result.gds_bytes == cold.result.gds_bytes
        assert report.result.to_json() == cold.result.to_json()

    def test_structural_anomaly_falls_back_to_full_rebuild(
        self, monkeypatch
    ):
        import repro.inter.workspace as workspace_mod

        ws = Workspace.open(build_minisoc(), get_pdk("edu130"),
                            options=OPTIONS)

        def boom(*args, **kwargs):
            raise InterError("injected anomaly")

        monkeypatch.setattr(workspace_mod, "dirty_cones", boom)
        new_rtl = to_verilog(make_counter(width=8, step=3).module)
        report = ws.edit("counter8", new_rtl)
        assert report.fallback is not None
        assert "injected anomaly" in report.fallback
        assert ws.fallbacks == 1
        # The fallback is a full rebuild with an unrestricted LEC — and
        # still byte-identical to any other rebuild of the same tree.
        assert report.result.ok
        assert report.lec is not None and report.lec.equivalent
        monkeypatch.undo()
        cold = Workspace.open(ws.design, get_pdk("edu130"),
                              options=OPTIONS)
        assert report.result.gds_bytes == cold.result.gds_bytes


class TestConeLecGuard:
    def test_seeded_mutation_must_fail(self, warm):
        """The acceptance guard: a rewired gate cannot slip past LEC."""
        design = warm.design
        mapped = warm.result.synthesis.mapped
        dirty = set(module_table(design))
        cones = dirty_cones(design, mapped, dirty)
        caught = False
        for seed in range(8):
            mutant, description = mutate_netlist(mapped, seed=seed)
            verdict = check_lec(design, mutant, cones=cones)
            if not verdict.equivalent:
                caught = True
                assert verdict.counterexamples
                break
        assert caught, "no seeded mutation was refuted by the cone LEC"

    def test_unmutated_netlist_still_proves(self, warm):
        mapped = warm.result.synthesis.mapped
        cones = dirty_cones(warm.design, mapped, {"counter8"})
        verdict = check_lec(warm.design, mapped, cones=cones)
        assert verdict.equivalent


class TestReplayDivergence:
    def test_opposite_charges_cancel(self):
        div = _Divergence()
        div.charge_usage(("a", "b"), +1)
        div.charge_usage(("a",), -1)
        assert div.usage == {"b": 1}
        assert div.cells == {"b"}
        assert div.clean(frozenset(("a", "c")))
        assert not div.clean(frozenset(("b",)))

    def test_usage_and_history_tracked_independently(self):
        div = _Divergence()
        div.charge_usage(("a",), +1)
        div.charge_hist(("a",), +1)
        div.charge_usage(("a",), -1)
        # The history delta keeps the cell divergent.
        assert "a" in div.cells
        div.charge_hist(("a",), -1)
        assert div.cells == set()
        assert div.usage == {} and div.hist == {}


class TestHierUtilization:
    def test_routability_derate_applied(self, warm):
        mapped = warm.result.synthesis.mapped
        node = get_pdk("edu130").node
        effective = hier_utilization(mapped, node, 0.35)
        # Bucketing and the routability derate both loosen the core.
        assert 0.0 < effective < 0.35
        assert 0.0 < ROUTABILITY < 1.0
        # Pure function: warm and cold flows must size cores alike.
        assert effective == hier_utilization(mapped, node, 0.35)

    def test_empty_netlist_passthrough(self):
        from repro.synth import MappedNetlist

        pdk = get_pdk("edu130")
        empty = MappedNetlist("void", pdk.library)
        assert hier_utilization(empty, pdk.node, 0.4) == 0.4


class TestSocCatalogueEntry:
    def test_soc_verifies_against_composed_model(self):
        ip = make_soc()
        assert ip.verify(cycles=96).passed

    def test_recode_rtl_is_a_real_edit(self):
        original = make_seven_seg().module
        edited = parse_verilog(sevenseg_recode_rtl())
        assert edited.name == original.name
        assert content_hash(edited) != content_hash(original)
