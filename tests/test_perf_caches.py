"""Equivalence and invalidation tests for the performance caches.

The backend's incremental kernels (per-net HPWL cache, memoized netlist
indexes, the STA stage-delay table, the simulator's batched input path)
are all pure speedups: every one must produce *bit-identical* results to
the straightforward from-scratch computation.  These tests pin that
contract down so future cache changes cannot silently drift.
"""

import random

import pytest

from repro.hdl import HdlError, ModuleBuilder, mux
from repro.pdk import get_pdk
from repro.pnr import (
    IncrementalHpwl,
    hpwl,
    make_floorplan,
    net_pin_positions,
    place,
)
from repro.sim import Simulator
from repro.sta import TimingAnalyzer
from repro.synth import (
    MappedSimulator,
    buffer_heavy_nets,
    size_for_load,
    synthesize,
)


def build_alu():
    b = ModuleBuilder("alu_ish")
    a = b.input("a", 8)
    c = b.input("c", 8)
    op = b.input("op", 2)
    add = (a + c).trunc(8)
    sub = (a - c).trunc(8)
    logic = mux(op[0], a & c, a | c)
    arith = mux(op[0], sub, add)
    b.output("y", mux(op[1], logic, arith))
    return b.build()


def build_mac():
    b = ModuleBuilder("mac_pipe")
    a = b.input("a", 8)
    w = b.input("w", 8)
    product = b.register("product", 16)
    product.next = a * w
    acc = b.register("acc", 16)
    acc.next = (acc + product).trunc(16)
    b.output("y", acc)
    return b.build()


@pytest.fixture(scope="module")
def pdk():
    return get_pdk("edu130")


@pytest.fixture(scope="module")
def alu_mapped(pdk):
    return synthesize(build_alu(), pdk.library).mapped


class TestIncrementalHpwl:
    def test_matches_scratch_after_random_swaps(self, alu_mapped, pdk):
        """N random swap/revert cycles: cached total == full recompute."""
        fp = make_floorplan(alu_mapped, pdk.node)
        placement = place(alu_mapped, fp, detailed_passes=0)
        cells = placement.cells
        state = IncrementalHpwl(
            alu_mapped, {n: (c.cx, c.cy) for n, c in cells.items()}, fp
        )
        rng = random.Random(7)
        names = sorted(cells)
        for i in range(200):
            a, b = rng.sample(names, 2)
            ca, cb = cells[a], cells[b]
            nets = state.affected(a, b)
            ca.x, cb.x = cb.x, ca.x
            ca.y, cb.y = cb.y, ca.y
            state.move(a, (ca.cx, ca.cy))
            state.move(b, (cb.cx, cb.cy))
            state.trial_total(nets)
            if i % 3 == 2:  # revert every third swap
                ca.x, cb.x = cb.x, ca.x
                ca.y, cb.y = cb.y, ca.y
                state.move(a, (ca.cx, ca.cy))
                state.move(b, (cb.cx, cb.cy))
            else:
                state.commit(nets)
            scratch = hpwl(
                net_pin_positions(alu_mapped, state.xy, fp)
            )
            assert state.total() == scratch  # bit-identical, not approx

    def test_place_matches_naive_swap_pass(self, alu_mapped, pdk):
        """place() with the incremental kernel reproduces the naive
        full-recompute greedy loop decision-for-decision."""
        fp = make_floorplan(alu_mapped, pdk.node)
        for seed in (1, 5):
            fast = place(alu_mapped, fp, detailed_passes=2, seed=seed)
            naive = self._naive_place(alu_mapped, fp, passes=2, seed=seed)
            assert fast.hpwl_um == naive[0]
            assert {n: (c.x, c.y) for n, c in fast.cells.items()} == naive[1]

    @staticmethod
    def _naive_place(mapped, fp, passes, seed):
        """The pre-optimization algorithm: full HPWL recompute per trial."""
        placement = place(mapped, fp, detailed_passes=0)
        placed = placement.cells
        rng = random.Random(seed)
        by_width = {}
        for name in placed:
            by_width.setdefault(round(placed[name].width, 4), []).append(name)

        def total():
            xy = {n: (c.cx, c.cy) for n, c in placed.items()}
            return hpwl(net_pin_positions(mapped, xy, fp))

        best = total()
        for _ in range(passes):
            for group in by_width.values():
                if len(group) < 2:
                    continue
                for _ in range(len(group)):
                    a, b = rng.sample(group, 2)
                    ca, cb = placed[a], placed[b]
                    ca.x, cb.x = cb.x, ca.x
                    ca.y, cb.y = cb.y, ca.y
                    candidate = total()
                    if candidate < best:
                        best = candidate
                    else:
                        ca.x, cb.x = cb.x, ca.x
                        ca.y, cb.y = cb.y, ca.y
        return round(best, 3), {n: (c.x, c.y) for n, c in placed.items()}


class TestStaDelayTable:
    def test_report_matches_uncached_propagation(self, pdk):
        """The table-driven analyzer reports exactly what per-call
        recomputation (the pre-optimization behaviour) reports."""
        mapped = synthesize(build_mac(), pdk.library).mapped

        class UncachedAnalyzer(TimingAnalyzer):
            def _propagate(self, worst):
                pick = max if worst else min
                arrival, via = {}, {}
                for nets in self.mapped.inputs.values():
                    for net in nets:
                        arrival[net] = 0.0
                for inst in self.mapped.seq_cells:
                    q = inst.pins[inst.cell.output]
                    launch = self.skew.get(inst.name, 0.0)
                    arrival[q] = launch + self._compute_stage_delay_ps(inst)
                    via[q] = inst
                for inst in self._order:
                    ins = inst.input_nets()
                    base = pick(
                        (arrival.get(n, 0.0) for n in ins), default=0.0
                    )
                    out = inst.pins[inst.cell.output]
                    arrival[out] = base + self._compute_stage_delay_ps(inst)
                    via[out] = inst
                return arrival, via

        node = pdk.node
        fast = TimingAnalyzer(mapped, node).analyze(2_000.0)
        slow = UncachedAnalyzer(mapped, node).analyze(2_000.0)
        assert fast.wns_ps == slow.wns_ps
        assert fast.tns_ps == slow.tns_ps
        assert fast.worst_hold_slack_ps == slow.worst_hold_slack_ps
        assert fast.endpoint_slacks == slow.endpoint_slacks
        assert [
            (p.instance, p.net, p.arrival_ps) for p in fast.critical_path
        ] == [(p.instance, p.net, p.arrival_ps) for p in slow.critical_path]
        assert (
            TimingAnalyzer(mapped, node).minimum_period_ps()
            == UncachedAnalyzer(mapped, node).minimum_period_ps()
        )

    def test_stage_delay_computed_exactly_once(self, pdk):
        """analyze() + minimum_period_ps() never recompute a delay."""
        mapped = synthesize(build_mac(), pdk.library).mapped
        counts = {}

        class CountingAnalyzer(TimingAnalyzer):
            def _compute_stage_delay_ps(self, inst):
                counts[inst.name] = counts.get(inst.name, 0) + 1
                return super()._compute_stage_delay_ps(inst)

        analyzer = CountingAnalyzer(mapped, pdk.node)
        analyzer.analyze(1_500.0)
        analyzer.analyze(3_000.0)
        analyzer.minimum_period_ps()
        driving = [c for c in mapped.cells if c.output_net is not None]
        assert counts == {inst.name: 1 for inst in driving}


class TestIndexInvalidation:
    def test_sizing_bumps_version_when_cells_change(self, pdk):
        mapped = synthesize(build_mac(), pdk.library).mapped
        mapped.net_loads()  # prime the caches
        before = mapped.index_version
        stats = size_for_load(mapped, max_load_per_drive_ff=0.5)
        assert stats.upsized > 0
        assert mapped.index_version > before

    def test_buffering_is_reflected_by_indexes(self, pdk):
        mapped = synthesize(build_alu(), pdk.library).mapped
        reference = synthesize(build_alu(), pdk.library).mapped
        # Prime every memoized index, then mutate through the API.
        loads_before = {
            net: len(sinks) for net, sinks in mapped.net_loads().items()
        }
        order_before = len(mapped.topo_comb())
        heavy = [n for n, count in loads_before.items() if count > 2]
        assert heavy, "need at least one heavy net for this test"

        stats = buffer_heavy_nets(mapped, max_fanout=2)
        assert stats.buffers_inserted > 0

        loads_after = mapped.net_loads()
        drivers_after = mapped.net_driver()
        # Fresh indexes: the inserted BUFs drive their branch nets.
        bufs = [c for c in mapped.cells if c.cell.name.startswith("BUF")]
        assert len(bufs) >= stats.buffers_inserted
        for buf in bufs:
            branch = buf.pins["y"]
            assert drivers_after[branch] is buf
            assert branch in loads_after or branch in {
                n for nets in mapped.outputs.values() for n in nets
            }
        # Moved sinks left the heavy nets' direct load lists.
        for net in heavy:
            direct = [
                (sink, pin)
                for sink, pin in loads_after[net]
                if not sink.cell.name.startswith("BUF")
            ]
            assert len(direct) <= 2
        assert len(mapped.topo_comb()) == order_before + len(bufs)

        # Buffering is the identity on logic: outputs must not change.
        sim_a = MappedSimulator(mapped)
        sim_b = MappedSimulator(reference)
        rng = random.Random(11)
        for _ in range(32):
            vector = {
                "a": rng.randrange(256),
                "c": rng.randrange(256),
                "op": rng.randrange(4),
            }
            for name, value in vector.items():
                sim_a.set(name, value)
                sim_b.set(name, value)
            assert sim_a.get("y") == sim_b.get("y")


class TestSimulatorBatchedInputs:
    def test_set_many_matches_sequential_sets(self):
        module = build_alu()
        batched = Simulator(module)
        sequential = Simulator(module)
        rng = random.Random(3)
        for _ in range(25):
            vector = {
                "a": rng.randrange(256),
                "c": rng.randrange(256),
                "op": rng.randrange(4),
            }
            batched.set_many(vector)
            for name, value in vector.items():
                sequential.set(name, value)
            assert batched.peek_all() == sequential.peek_all()

    def test_set_many_validates_before_applying(self):
        sim = Simulator(build_alu())
        sim.set_many({"a": 5, "c": 9})
        with pytest.raises(HdlError):
            sim.set_many({"a": 200, "c": 300})  # c overflows 8 bits
        # Nothing was applied: the bad batch is rejected atomically.
        assert sim.get("a") == 5
        assert sim.get("c") == 9

    def test_set_rejects_non_inputs(self):
        sim = Simulator(build_alu())
        with pytest.raises(HdlError):
            sim.set("y", 1)
