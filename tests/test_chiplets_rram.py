"""Tests for chiplet economics and the RRAM crossbar."""

import numpy as np
import pytest

from repro.analog.rram import RramCrossbar, RramDeviceModel, mvm_error
from repro.analytics.chiplets import (
    chiplet_cost,
    comparison_table,
    crossover_area_mm2,
    die_yield,
    dies_per_wafer,
    monolithic_cost,
)


class TestYieldModel:
    def test_yield_decreases_with_area(self):
        assert die_yield(50) > die_yield(200) > die_yield(800)

    def test_yield_bounded(self):
        for area in (1, 10, 100, 1000):
            assert 0 < die_yield(area) <= 1

    def test_defect_density_hurts(self):
        assert die_yield(200, d0_per_cm2=0.05) > die_yield(200, d0_per_cm2=0.3)

    def test_dies_per_wafer(self):
        assert dies_per_wafer(100) > dies_per_wafer(400)
        assert dies_per_wafer(100, wafer_diameter_mm=300) > dies_per_wafer(
            100, wafer_diameter_mm=200
        )

    def test_invalid_area(self):
        with pytest.raises(ValueError):
            die_yield(0)
        with pytest.raises(ValueError):
            dies_per_wafer(-1)


class TestChipletEconomics:
    def test_small_systems_prefer_monolithic(self):
        mono = monolithic_cost(40.0)
        split = chiplet_cost(40.0, 4)
        assert mono.good_unit_cost < split.good_unit_cost

    def test_large_systems_prefer_chiplets(self):
        mono = monolithic_cost(800.0)
        split = chiplet_cost(800.0, 4)
        assert split.good_unit_cost < mono.good_unit_cost

    def test_crossover_between(self):
        crossover = crossover_area_mm2(n_chiplets=4)
        assert 40.0 < crossover < 800.0
        # Just below: monolithic wins; just above: chiplets win.
        below, above = crossover * 0.8, crossover * 1.2
        assert monolithic_cost(below).good_unit_cost <= chiplet_cost(
            below, 4
        ).good_unit_cost
        assert chiplet_cost(above, 4).good_unit_cost <= monolithic_cost(
            above
        ).good_unit_cost

    def test_d2d_overhead_costs_silicon(self):
        lean = chiplet_cost(400.0, 4, d2d_overhead=0.0)
        fat = chiplet_cost(400.0, 4, d2d_overhead=0.25)
        assert fat.total_silicon_mm2 > lean.total_silicon_mm2
        assert fat.good_unit_cost > lean.good_unit_cost

    def test_assembly_yield_punishes_many_chiplets(self):
        few = chiplet_cost(400.0, 2, assembly_yield_per_die=0.95)
        many = chiplet_cost(400.0, 16, assembly_yield_per_die=0.95)
        assert many.system_yield < few.system_yield

    def test_comparison_table_shape(self):
        rows = comparison_table()
        assert rows[0]["winner"] == "monolithic"
        assert rows[-1]["winner"] == "chiplet"

    def test_invalid_chiplet_count(self):
        with pytest.raises(ValueError):
            chiplet_cost(100.0, 0)


class TestRramCrossbar:
    def test_ideal_mvm_accurate(self):
        weights = np.array([[0.2, 0.8], [0.5, 0.1], [1.0, 0.0]])
        device = RramDeviceModel(levels=256)
        crossbar = RramCrossbar(3, 2, device=device)
        crossbar.program(weights)
        inputs = np.array([1.0, 0.5, 0.25])
        measured = crossbar.mvm_weights(inputs)
        exact = weights.T @ inputs
        assert np.allclose(measured, exact, atol=0.02)

    def test_quantization_limits_accuracy(self):
        weights = np.random.default_rng(1).uniform(0, 1, (8, 4))
        inputs = np.random.default_rng(2).uniform(0, 1, 8)
        coarse = mvm_error(weights, inputs, RramDeviceModel(levels=2))
        fine = mvm_error(weights, inputs, RramDeviceModel(levels=64))
        assert fine < coarse

    def test_variation_degrades_accuracy(self):
        weights = np.random.default_rng(1).uniform(0, 1, (8, 4))
        inputs = np.random.default_rng(2).uniform(0, 1, 8)
        clean = mvm_error(weights, inputs, RramDeviceModel(levels=64))
        noisy = mvm_error(
            weights, inputs,
            RramDeviceModel(levels=64, variation_sigma=0.3),
        )
        assert noisy > clean

    def test_stuck_cells_hurt(self):
        weights = np.full((8, 4), 0.9)
        inputs = np.ones(8)
        healthy = mvm_error(weights, inputs, RramDeviceModel(levels=64))
        broken = mvm_error(
            weights, inputs,
            RramDeviceModel(levels=64, stuck_fraction=0.5), seed=3,
        )
        assert broken > healthy

    def test_energy_scales_with_conductance(self):
        low = RramCrossbar(4, 4)
        low.program(np.zeros((4, 4)))
        high = RramCrossbar(4, 4)
        high.program(np.ones((4, 4)))
        assert high.energy_per_mvm_j() > low.energy_per_mvm_j()

    def test_shape_validation(self):
        crossbar = RramCrossbar(4, 4)
        with pytest.raises(ValueError):
            crossbar.program(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            crossbar.mvm(np.zeros(3))
        with pytest.raises(ValueError):
            RramCrossbar(0, 4)
        with pytest.raises(ValueError):
            RramDeviceModel(levels=1)

    def test_weights_clipped(self):
        crossbar = RramCrossbar(1, 1, device=RramDeviceModel(levels=4))
        crossbar.program(np.array([[5.0]]))
        assert crossbar.conductances[0, 0] == pytest.approx(
            crossbar.device.g_max_s
        )
