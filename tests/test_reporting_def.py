"""Tests for flow reports and the DEF writer/reader."""

import pytest

from repro.core import (
    OPEN,
    FlowOptions,
    full_report,
    physical_report,
    power_report,
    run_flow,
    synthesis_report,
    timing_report,
)
from repro.hdl import ModuleBuilder, mux
from repro.layout import from_physical, read_def, write_def
from repro.pdk import get_pdk


@pytest.fixture(scope="module")
def flow_result():
    b = ModuleBuilder("reportee")
    en = b.input("en", 1)
    count = b.register("count", 6)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    return run_flow(b.build(), get_pdk("edu130"), FlowOptions(preset=OPEN))


class TestReports:
    def test_synthesis_report(self, flow_result):
        text = synthesis_report(flow_result)
        assert "Synthesis report" in text
        assert "optimized gates" in text
        assert "EQUIVALENT" in text

    def test_timing_report_contains_path(self, flow_result):
        text = timing_report(flow_result)
        assert "critical path" in text
        assert "fmax" in text
        assert "MET" in text or "VIOLATED" in text

    def test_power_report(self, flow_result):
        text = power_report(flow_result)
        assert "dynamic" in text and "leakage" in text

    def test_physical_report(self, flow_result):
        text = physical_report(flow_result)
        assert "die_area_mm2" in text
        assert "DRC" in text

    def test_full_report_bundles_everything(self, flow_result):
        text = full_report(flow_result)
        for heading in ("Flow summary", "Synthesis report", "Timing report",
                        "Power report", "Physical report"):
            assert heading in text
        # Every flow step appears with a runtime.
        for step in flow_result.steps:
            assert step.step.value in text


class TestDef:
    def test_roundtrip(self, flow_result):
        original = from_physical(flow_result.physical)
        text = write_def(original)
        assert text.startswith("VERSION 5.8")
        parsed = read_def(text)
        assert parsed.name == original.name
        assert parsed.die == original.die
        assert len(parsed.components) == len(original.components)
        assert len(parsed.pins) == len(original.pins)
        assert parsed.nets == original.nets
        for a, b in zip(original.components, parsed.components):
            assert (a.name, a.cell, a.x, a.y) == (b.name, b.cell, b.x, b.y)
        for a, b in zip(original.pins, parsed.pins):
            assert (a.name, a.net, a.direction, a.x, a.y) == (
                b.name, b.net, b.direction, b.x, b.y
            )

    def test_pins_have_directions(self, flow_result):
        design = from_physical(flow_result.physical)
        directions = {p.direction for p in design.pins}
        assert directions == {"INPUT", "OUTPUT"}

    def test_components_match_placement(self, flow_result):
        design = from_physical(flow_result.physical)
        assert len(design.components) == len(
            flow_result.physical.placement.cells
        )
        for comp in design.components:
            assert comp.status == "PLACED"
            assert 0 <= comp.x <= design.die[2]
