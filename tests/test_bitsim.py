"""Differential tests for the word-parallel bit-packed simulators.

The packed engines (:mod:`repro.sim.bitsim`) are a performance fast
path: every answer they produce must be *bit-exact* against the scalar
simulators they replace.  These tests pin that down three ways:

* packing round-trips (property tests over widths 1-64);
* lockstep differential runs — packed lanes vs independent scalar
  simulators, outputs and register state, over catalogue designs and
  randomly generated modules;
* end-to-end result equality — ``check_equivalence`` must return
  byte-identical JSON with ``engine="scalar"`` and ``engine="packed"``,
  both for passing designs and for seeded must-fail mutations, and
  batched LEC replay must agree with scalar replay witness by witness.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formal import check_lec, mutate_netlist, replay_counterexamples
from repro.formal.lec import PACKED_REPLAY_MIN, _replay_counterexample_scalar
from repro.hdl import ModuleBuilder, mux
from repro.ip.catalog import generate
from repro.pdk import get_pdk
from repro.sim import Simulator
from repro.sim.bitsim import (
    LANES,
    PackedGateSimulator,
    PackedMappedSimulator,
    PackedRtlSimulator,
    PackedSimError,
    broadcast_word,
    extract_lane,
    extract_lane_vector,
    pack_word,
    unpack_word,
)
from repro.synth import (
    GateSimulator,
    MappedSimulator,
    check_equivalence,
    lower,
    optimize,
    synthesize,
)


@pytest.fixture(scope="module")
def library():
    return get_pdk("edu130").library


# ---------------------------------------------------------------------------
# Packing helpers
# ---------------------------------------------------------------------------


class TestPackingRoundTrip:
    @given(
        st.integers(min_value=1, max_value=64).flatmap(
            lambda width: st.tuples(
                st.just(width),
                st.lists(
                    st.integers(min_value=0, max_value=2 ** width - 1),
                    min_size=1,
                    max_size=LANES,
                ),
            )
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_extract_lane_round_trips_pack(self, width_and_values):
        width, values = width_and_values
        words = pack_word(values, width)
        assert len(words) == width
        for lane, value in enumerate(values):
            assert extract_lane(words, lane) == value
        # Lanes beyond the packed vectors read as zero.
        assert unpack_word(words)[len(values):] == [0] * (
            LANES - len(values)
        )

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=2 ** 64 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_broadcast_is_pack_of_identical_lanes(self, width, value):
        value &= (1 << width) - 1
        assert broadcast_word(value, width) == pack_word(
            [value] * LANES, width
        )

    def test_pack_rejects_too_many_lanes(self):
        with pytest.raises(PackedSimError):
            pack_word([0] * (LANES + 1), 4)

    def test_extract_lane_vector_localizes_mismatch(self):
        packed = {"a": pack_word([3, 5, 9], 4), "b": pack_word([1, 0, 7], 3)}
        assert extract_lane_vector(packed, 1) == {"a": 5, "b": 0}


# ---------------------------------------------------------------------------
# Lockstep differential: packed lanes vs scalar simulators
# ---------------------------------------------------------------------------


def random_stimulus(module, rng, cycles, lanes):
    """Per-cycle packed stimulus plus the per-lane scalar views."""
    widths = {signal.name: signal.width for signal in module.inputs}
    packed, scalar = [], []
    for _ in range(cycles):
        lane_vectors = [
            {name: rng.getrandbits(width) for name, width in widths.items()}
            for _ in range(lanes)
        ]
        packed.append({
            name: pack_word([v[name] for v in lane_vectors], width)
            for name, width in widths.items()
        })
        scalar.append(lane_vectors)
    return packed, scalar


def run_differential(module, packed_sim, scalar_sims, rng, cycles=16):
    """Drive packed and scalar sims in lockstep, compare everything."""
    lanes = len(scalar_sims)
    packed_stim, scalar_stim = random_stimulus(module, rng, cycles, lanes)
    watch = [signal.name for signal in module.outputs]
    for cycle in range(cycles):
        packed_sim.set_many(packed_stim[cycle])
        for lane, sim in enumerate(scalar_sims):
            sim.set_many(scalar_stim[cycle][lane])
        for name in watch:
            got = packed_sim.get(name)
            for lane, sim in enumerate(scalar_sims):
                assert extract_lane(got, lane) == sim.get(name), (
                    f"{name} diverged at cycle {cycle} lane {lane}"
                )
        packed_sim.step()
        for sim in scalar_sims:
            sim.step()
    for name in packed_sim.register_words():
        packed_value = packed_sim.get_register(name)
        for lane, sim in enumerate(scalar_sims):
            assert extract_lane(packed_value, lane) == sim.get_register(name)


DIFF_DESIGNS = ("counter", "gray_counter", "lfsr", "alu", "uart_tx")


class TestLockstepDifferential:
    @pytest.mark.parametrize("name", DIFF_DESIGNS)
    def test_packed_rtl_matches_scalar_simulator(self, name):
        module = generate(name).module
        rng = random.Random(7)
        packed = PackedRtlSimulator(module)
        # The packed RTL simulator runs the *lowered* netlist; scalar
        # reference is the RTL interpreter, so this also cross-checks
        # lowering.
        scalars = [Simulator(module) for _ in range(8)]
        run_differential(module, packed, scalars, rng)

    @pytest.mark.parametrize("name", DIFF_DESIGNS)
    def test_packed_gate_matches_scalar_gate(self, name):
        module = generate(name).module
        netlist, _ = optimize(lower(module))
        rng = random.Random(11)
        packed = PackedGateSimulator(netlist)
        scalars = [GateSimulator(netlist) for _ in range(8)]
        run_differential(module, packed, scalars, rng)

    @pytest.mark.parametrize("name", DIFF_DESIGNS)
    def test_packed_mapped_matches_scalar_mapped(self, name, library):
        module = generate(name).module
        mapped = synthesize(module, library, verify=False).mapped
        rng = random.Random(13)
        packed = PackedMappedSimulator(mapped)
        scalars = [MappedSimulator(mapped) for _ in range(8)]
        run_differential(module, packed, scalars, rng)

    def test_random_modules_differential(self, library):
        """Randomly generated datapaths, packed vs scalar, all layers."""
        for seed in range(6):
            module = build_random_module(seed)
            rng = random.Random(seed + 100)
            packed = PackedRtlSimulator(module)
            scalars = [Simulator(module) for _ in range(4)]
            run_differential(module, packed, scalars, rng, cycles=8)
            mapped = synthesize(module, library, verify=False).mapped
            rng = random.Random(seed + 200)
            packed = PackedMappedSimulator(mapped)
            scalars = [MappedSimulator(mapped) for _ in range(4)]
            run_differential(module, packed, scalars, rng, cycles=8)

    def test_partial_lane_counts(self):
        module = generate("counter").module
        packed = PackedRtlSimulator(module, lanes=3)
        scalars = [Simulator(module) for _ in range(3)]
        run_differential(module, packed, scalars, random.Random(3), cycles=6)

    def test_load_state_round_trip(self):
        module = generate("counter").module
        packed = PackedRtlSimulator(module)
        values = [i * 5 % 256 for i in range(LANES)]
        packed.load_state({"count": pack_word(values, 8)})
        assert unpack_word(packed.get_register("count")) == values


def build_random_module(seed):
    """A random small datapath: registers, muxes, arithmetic, slicing."""
    rng = random.Random(seed)
    b = ModuleBuilder(f"rand{seed}")
    width = rng.choice((3, 5, 8))
    a = b.input("a", width)
    c = b.input("c", width)
    sel = b.input("sel", 1)
    acc = b.register("acc", width)
    shift = b.register("shift", width)
    combine = rng.choice((
        lambda x, y: (x + y).trunc(width),
        lambda x, y: x ^ y,
        lambda x, y: (x & y) | (x ^ y),
    ))
    acc.next = mux(sel, combine(acc, a), acc)
    shift.next = combine(shift, c) ^ a
    b.output("y", combine(acc, shift))
    b.output("msb", acc[width - 1])
    return b.build()


# ---------------------------------------------------------------------------
# End to end: check_equivalence must not change its answers
# ---------------------------------------------------------------------------


EQUIV_DESIGNS = ("counter", "gray_counter", "alu", "uart_tx", "fir")


class TestEquivalenceEngines:
    @pytest.mark.parametrize("name", EQUIV_DESIGNS)
    def test_passing_results_byte_identical(self, name, library):
        module = generate(name).module
        for impl in (
            lower(module),
            synthesize(module, library, verify=False).mapped,
        ):
            scalar = check_equivalence(
                module, impl, cycles=96, seed=5, engine="scalar")
            packed = check_equivalence(
                module, impl, cycles=96, seed=5, engine="packed")
            assert scalar.passed
            assert packed.to_json() == scalar.to_json()

    def test_mutated_netlists_byte_identical(self, library):
        """Must-fail path: mismatch records match field for field."""
        module = generate("counter").module
        mapped = synthesize(module, library, verify=False).mapped
        failing = 0
        for seed in range(10):
            mutant, _ = mutate_netlist(mapped, seed=seed)
            scalar = check_equivalence(
                module, mutant, cycles=96, seed=5, engine="scalar")
            packed = check_equivalence(
                module, mutant, cycles=96, seed=5, engine="packed")
            assert packed.to_json() == scalar.to_json()
            if not scalar.passed:
                failing += 1
                assert packed.mismatches  # records survived the fallback
        assert failing, "no mutation produced a detectable mismatch"

    def test_auto_engine_matches_scalar(self, library):
        module = generate("lfsr").module
        mapped = synthesize(module, library, verify=False).mapped
        auto = check_equivalence(module, mapped, cycles=64, seed=9)
        scalar = check_equivalence(
            module, mapped, cycles=64, seed=9, engine="scalar")
        assert auto.to_json() == scalar.to_json()

    def test_unknown_engine_rejected(self, library):
        module = generate("counter").module
        with pytest.raises(ValueError):
            check_equivalence(module, lower(module), engine="simd")

    def test_result_json_records_mismatch_cap(self, library):
        module = generate("counter").module
        result = check_equivalence(module, lower(module), cycles=16)
        parsed = type(result).from_json(result.to_json())
        assert parsed.mismatch_cap == result.mismatch_cap == 10


# ---------------------------------------------------------------------------
# Batched LEC replay vs scalar replay
# ---------------------------------------------------------------------------


class TestBatchedReplay:
    def test_batch_matches_scalar_witness_by_witness(self, library):
        module = generate("counter").module
        mapped = synthesize(module, library, verify=False).mapped
        checked = 0
        for seed in range(8):
            mutant, _ = mutate_netlist(mapped, seed=seed)
            result = check_lec(module, mutant)
            if result.equivalent:
                continue
            cexes = result.counterexamples
            # Tile past the packed threshold so the packed path runs.
            batch = (cexes * PACKED_REPLAY_MIN)[:max(
                PACKED_REPLAY_MIN, len(cexes))]
            packed = replay_counterexamples(module, mutant, batch)
            for cex, mismatch in zip(batch, packed):
                scalar = _replay_counterexample_scalar(module, mutant, cex)
                assert (mismatch is None) == (scalar is None)
                if mismatch is not None:
                    assert mismatch.output == scalar.output
                    assert mismatch.expect == scalar.expect
                    assert mismatch.got == scalar.got
                checked += 1
        assert checked, "no mutation yielded replayable counterexamples"

    def test_reset_kind_rejected(self, library):
        module = generate("counter").module
        mapped = synthesize(module, library, verify=False).mapped
        mutant, _ = mutate_netlist(mapped, seed=0)
        result = check_lec(module, mutant)
        if result.equivalent or not result.counterexamples:
            pytest.skip("seed 0 mutation was benign")
        cex = result.counterexamples[0]
        fake = type(cex)(
            cone=cex.cone, kind="reset", inputs=cex.inputs,
            state=cex.state, expect=cex.expect, got=cex.got,
        )
        with pytest.raises(ValueError):
            replay_counterexamples(module, mutant, [fake])
