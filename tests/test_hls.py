"""Tests for the HLS compiler: DFG building, scheduling, codegen."""

import pytest

from repro.hls import (
    HlsError,
    alap_schedule,
    asap_schedule,
    build_dfg,
    compile_function,
    emulate_dfg,
    list_schedule,
    run_hls_module,
)


def mac(a, b, c):
    return a * b + c


def poly3(x, c0, c1, c2):
    # c0 + c1*x + c2*x^2, Horner form
    acc = c2
    acc = acc * x + c1
    acc = acc * x + c0
    return acc


def fir4(x0, x1, x2, x3):
    acc = 0
    acc = acc + x0 * 3
    acc = acc + x1 * 7
    acc = acc + x2 * 7
    acc = acc + x3 * 3
    return acc


def mixed_logic(a, b):
    t = (a ^ b) & 255
    u = (a + b) >> 1
    return t | u


class TestDfg:
    def test_mac_shape(self):
        dfg, widths = build_dfg(mac)
        assert len(dfg.inputs) == 3
        counts = dfg.counts_by_resource()
        assert counts["mul"] == 1
        assert counts["addsub"] == 1
        assert widths == {"a": 8, "b": 8, "c": 8}

    def test_width_annotations(self):
        def wide(a: 16, b: 4):
            return a + b

        _, widths = build_dfg(wide)
        assert widths == {"a": 16, "b": 4}

    def test_loop_unrolling(self):
        def summer(a):
            acc = 0
            for i in range(5):
                acc = acc + a
            return acc

        dfg, _ = build_dfg(summer)
        assert dfg.counts_by_resource()["addsub"] == 5

    def test_const_dedup(self):
        def f(a):
            return (a + 7) * (a - 7)

        dfg, _ = build_dfg(f)
        consts = [n for n in dfg.nodes if n.op == "const"]
        assert len(consts) == 1

    def test_depth(self):
        dfg, _ = build_dfg(poly3)
        assert dfg.depth() == 4  # alternating mul/add chain

    def test_unsupported_constructs_rejected(self):
        def with_if(a):
            if a:
                return 1
            return 0

        def with_div(a, b):
            return a / b

        def no_return(a):
            x = a + 1

        def var_shift(a, b):
            return a << b

        for fn in (with_if, with_div, no_return, var_shift):
            with pytest.raises(HlsError):
                build_dfg(fn)

    def test_huge_unroll_rejected(self):
        def big(a):
            acc = 0
            for i in range(1000):
                acc = acc + a
            return acc

        with pytest.raises(HlsError, match="unroll"):
            build_dfg(big)


class TestScheduling:
    def test_asap_respects_dependencies(self):
        dfg, _ = build_dfg(poly3)
        schedule = asap_schedule(dfg)
        for node in dfg.operation_nodes():
            for operand in node.operands:
                if operand in schedule.cycle:
                    assert schedule.cycle[operand] < schedule.cycle[node.index]

    def test_alap_within_asap_latency(self):
        dfg, _ = build_dfg(fir4)
        asap = asap_schedule(dfg)
        alap = alap_schedule(dfg)
        assert alap.latency == asap.latency
        for index, cycle in alap.cycle.items():
            assert cycle >= asap.cycle[index]

    def test_resource_constraint_respected(self):
        dfg, _ = build_dfg(fir4)  # 4 independent multiplies
        schedule = list_schedule(dfg, {"mul": 1})
        mul_nodes = [n for n in dfg.operation_nodes() if n.resource == "mul"]
        cycles = [schedule.cycle[n.index] for n in mul_nodes]
        assert len(set(cycles)) == len(cycles)  # serialized

    def test_more_resources_reduce_latency(self):
        dfg, _ = build_dfg(fir4)
        slow = list_schedule(dfg, {"mul": 1})
        fast = list_schedule(dfg, {"mul": 4, "addsub": 4})
        assert fast.latency <= slow.latency


class TestCodegen:
    @pytest.mark.parametrize("fn,args", [
        (mac, {"a": 5, "b": 7, "c": 11}),
        (poly3, {"x": 3, "c0": 1, "c1": 2, "c2": 3}),
        (fir4, {"x0": 1, "x1": 2, "x2": 3, "x3": 4}),
        (mixed_logic, {"a": 200, "b": 100}),
    ])
    def test_generated_rtl_matches_python(self, fn, args):
        result = compile_function(fn, width=16)
        got = run_hls_module(result, args)
        want = fn(**args) & 0xFFFF
        assert got == want

    def test_matches_emulation_with_overflow(self):
        result = compile_function(mac, width=8)
        args = {"a": 250, "b": 250, "c": 99}
        got = run_hls_module(result, args)
        dfg, _ = build_dfg(mac)
        assert got == emulate_dfg(dfg, 8, args)

    def test_resource_sharing_reduces_multipliers(self):
        shared = compile_function(fir4, resources={"mul": 1}, width=16)
        parallel = compile_function(fir4, resources={"mul": 4}, width=16)
        assert shared.fu_instances["mul"] == 1
        assert parallel.fu_instances["mul"] >= 2
        assert shared.latency >= parallel.latency
        args = {"x0": 9, "x1": 8, "x2": 7, "x3": 6}
        assert run_hls_module(shared, args) == run_hls_module(parallel, args)

    def test_report_fields(self):
        result = compile_function(mac)
        report = result.report()
        assert report["function"] == "mac"
        assert report["latency_cycles"] == result.latency
        assert report["source_lines"] >= 2

    def test_passthrough_function(self):
        def ident(a):
            return a

        result = compile_function(ident)
        assert run_hls_module(result, {"a": 42}) == 42

    def test_hls_output_synthesizes(self):
        from repro.pdk import get_pdk
        from repro.synth import synthesize

        result = compile_function(mac, width=8)
        synth = synthesize(result.module, get_pdk("edu130").library,
                           verify=True, verify_cycles=16)
        assert synth.equivalence.passed
