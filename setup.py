"""Legacy setuptools entry point.

Kept so that ``python setup.py develop`` works in offline environments
where pip cannot fetch the ``wheel`` package needed for PEP 660 editable
installs.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
