"""Word-parallel simulation benchmark: packed vs scalar throughput.

Measures the speedup of the 64-lane bit-packed engines
(:mod:`repro.sim.bitsim`) over the scalar lockstep simulators on the
three workloads they accelerate:

* **Random-vector equivalence** — ``check_equivalence`` with
  ``engine="packed"`` vs ``engine="scalar"`` on catalogue designs,
  against both gate-level (``lower``) and mapped implementations.  The
  headline number is the geometric mean over the gate-level workloads,
  where the packed path is not bound by the scalar RTL reference.
  Results must stay byte-identical between engines — a fast path that
  changes answers is a bug, not an optimization.
* **Batched LEC replay** — ``replay_counterexamples`` (one lane per
  witness) vs one scalar replay per counterexample.
* **Stuck-at fault simulation** — faults-per-second of the PPSFP
  simulator in :mod:`repro.synth.dft` (there is no scalar fault
  simulator to race; the heuristic it replaced computed nothing).

Writes ``BENCH_sim.json`` and exits nonzero if any equivalence workload
speeds up less than the CI floor (5x) or any engine disagrees with the
scalar reference.

Usage::

    python benchmarks/bench_sim_packed.py [BENCH_sim.json]
"""

from __future__ import annotations

import json
import math
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.formal import check_lec, mutate_netlist, replay_counterexamples
from repro.formal.lec import _replay_counterexample_scalar
from repro.ip.catalog import generate
from repro.pdk import get_pdk
from repro.sim.bitsim import LANES
from repro.synth import (
    check_equivalence,
    insert_scan_chain,
    lower,
    simulate_faults,
    synthesize,
)

CYCLES = 256
SEED = 2025
CI_FLOOR = 5.0
#: Gate-level workloads carry the headline: the packed path there is
#: dominated by packed evaluation, not the scalar RTL reference.
HEADLINE_DESIGNS = ("alu", "multiplier", "fir", "tinycpu")
MAPPED_DESIGNS = ("counter", "fir", "tinycpu")


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_equivalence(library):
    """Packed vs scalar random-vector equivalence, same results required."""
    rows = []
    for name in HEADLINE_DESIGNS:
        module = generate(name).module
        rows.append((name, "gates", module, lower(module)))
    for name in MAPPED_DESIGNS:
        module = generate(name).module
        mapped = synthesize(module, library, verify=False).mapped
        rows.append((name, "mapped", module, mapped))

    workloads = []
    for name, impl_kind, module, impl in rows:
        scalar, scalar_s = _time(lambda: check_equivalence(
            module, impl, cycles=CYCLES, seed=SEED, engine="scalar"))
        packed, packed_s = _time(lambda: check_equivalence(
            module, impl, cycles=CYCLES, seed=SEED, engine="packed"))
        identical = scalar.to_json() == packed.to_json()
        vectors = CYCLES * len(module.inputs)
        workloads.append({
            "design": name,
            "impl": impl_kind,
            "cycles": CYCLES,
            "passed": packed.passed,
            "identical_json": identical,
            "scalar_s": round(scalar_s, 4),
            "packed_s": round(packed_s, 4),
            "speedup": round(scalar_s / packed_s, 2),
            "packed_vectors_per_sec": round(vectors / packed_s),
        })
        print(f"equiv {name:12s} {impl_kind:6s} "
              f"scalar {scalar_s:7.3f}s  packed {packed_s:7.3f}s  "
              f"{scalar_s / packed_s:6.1f}x  identical={identical}")
    return workloads


def bench_replay(library):
    """Batched packed replay vs per-counterexample scalar replay.

    LEC emits one or two witnesses per failing check, so the packed
    path's win comes from amortizing simulator construction across a
    *wide* batch on one netlist; small batches dispatch to the scalar
    path automatically (``PACKED_REPLAY_MIN``).  The wide batch here
    tiles a genuine witness across all fault lanes — every lane does
    the full load/settle/step, so the throughput is what any 63-witness
    batch would see.
    """
    module = generate("multiplier").module
    mapped = synthesize(module, library, verify=False).mapped
    mutant, _ = mutate_netlist(mapped, seed=0)
    result = check_lec(module, mutant)
    assert not result.equivalent, "mutation guard: seed 0 must break LEC"
    batch = (result.counterexamples * LANES)[:LANES - 1]

    scalar, scalar_s = _time(lambda: [
        _replay_counterexample_scalar(module, mutant, cex) for cex in batch
    ])
    packed, packed_s = _time(
        lambda: replay_counterexamples(module, mutant, batch)
    )
    identical = all(
        (a is None) == (b is None) for a, b in zip(scalar, packed)
    )
    reproduced = sum(1 for m in packed if m is not None)
    print(f"replay {len(batch)} witnesses (1 packed word): "
          f"scalar {scalar_s:.3f}s  packed {packed_s:.3f}s  "
          f"{scalar_s / packed_s:.1f}x  identical={identical}")
    return {
        "design": "multiplier",
        "witnesses": len(batch),
        "reproduced": reproduced,
        "scalar_s": round(scalar_s, 4),
        "packed_s": round(packed_s, 4),
        "speedup": round(scalar_s / packed_s, 2),
        "identical_verdicts": identical,
    }


def bench_fault_sim(library):
    """PPSFP fault-simulation throughput on the largest catalogue IP."""
    module = generate("tinycpu").module
    mapped = synthesize(module, library, verify=False).mapped
    insert_scan_chain(mapped)
    report, elapsed = _time(lambda: simulate_faults(mapped, scanned=True))
    print(f"faults tinycpu: {report.total_faults} faults, "
          f"coverage {report.coverage:.3f}, {elapsed:.3f}s "
          f"({report.total_faults / elapsed:.0f} faults/s)")
    return {
        "design": "tinycpu",
        "total_faults": report.total_faults,
        "coverage": round(report.coverage, 4),
        "patterns": report.patterns,
        "elapsed_s": round(elapsed, 4),
        "faults_per_sec": round(report.total_faults / elapsed),
    }


def main(argv):
    out_path = argv[1] if len(argv) > 1 else "BENCH_sim.json"
    library = get_pdk("edu130").library

    workloads = bench_equivalence(library)
    replay = bench_replay(library)
    faults = bench_fault_sim(library)

    headline = [w["speedup"] for w in workloads if w["impl"] == "gates"]
    geomean = math.exp(sum(math.log(s) for s in headline) / len(headline))
    payload = {
        "lanes": LANES,
        "cycles": CYCLES,
        "seed": SEED,
        "workloads": workloads,
        "speedup_random_vector_equivalence": round(geomean, 2),
        "min_equivalence_speedup": min(w["speedup"] for w in workloads),
        "ci_floor": CI_FLOOR,
        "replay": replay,
        "fault_sim": faults,
    }
    directory = os.path.dirname(out_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nheadline speedup (gate-level geomean): {geomean:.1f}x")
    print(f"JSON written to {out_path}")

    failures = []
    for w in workloads:
        if not w["identical_json"]:
            failures.append(f"{w['design']}/{w['impl']}: results differ")
        if w["speedup"] < CI_FLOOR:
            failures.append(
                f"{w['design']}/{w['impl']}: {w['speedup']}x < "
                f"{CI_FLOOR}x floor"
            )
    if not replay["identical_verdicts"]:
        failures.append("replay: packed verdicts differ from scalar")
    if failures:
        print("\nBENCH FAILED:\n  " + "\n  ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
