"""Campaign engine benchmark: cached throughput vs serial no-cache.

Runs the seeded duplicate-heavy synthetic campaign from ``repro
campaign`` at CI scale (10k jobs over a 10-design pool) and measures:

* **Throughput** — jobs/s of the real campaign engine (fair-share
  scheduler + content-hash result cache) against a serial no-cache
  baseline.  The baseline is timed on a seeded sample of the same
  workload and extrapolated, because running 10k uncached flows is the
  very cost the cache exists to avoid.
* **Cache hit rate** — duplicate-heavy means ~10 unique designs across
  10k submissions; the hit rate is the campaign's headline economics.
* **p95 queue latency** — from the deterministic list-scheduling
  simulation (simulated minutes, not wall-clock), so the number is
  diffable across machines.
* **Serial vs process-pool divergence** — a small campaign run both
  ways must produce byte-identical result signatures and identical
  hit/miss accounting.  A parallel path that changes answers is a bug,
  not an optimization.

Writes ``BENCH_campaign.json`` and exits nonzero if the cached
campaign speeds up less than the CI floor (5x) over the serial
no-cache baseline, or if the pool diverges from serial.

Usage::

    python benchmarks/bench_campaign.py [BENCH_campaign.json]
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaign import Campaign, result_signature
from repro.cli import synth_campaign_workload
from repro.core import FlowOptions, run_flow
from repro.pdk import get_pdk

JOBS = 10_000
TENANTS = 6
SEED = 2025
BASELINE_SAMPLE = 200
CI_FLOOR = 5.0
EQUIV_JOBS = 24


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_baseline():
    """Serial no-cache throughput on a seeded sample of the workload.

    Every job runs the full flow even when the design was seen before —
    exactly what a campaign without the result cache would do.
    """
    campaign = Campaign(seed=SEED)
    synth_campaign_workload(campaign, BASELINE_SAMPLE, TENANTS, SEED)
    jobs = campaign.queue.jobs()
    pdk = get_pdk("edu130")

    def run():
        for job in jobs:
            run_flow(job.module, pdk, job.options or FlowOptions())

    _, elapsed = _time(run)
    throughput = len(jobs) / elapsed
    print(f"baseline  {len(jobs):6d} uncached flows in {elapsed:7.2f}s  "
          f"({throughput:8.1f} jobs/s)")
    return {
        "sample_jobs": len(jobs),
        "elapsed_s": round(elapsed, 4),
        "throughput_jobs_per_s": round(throughput, 2),
    }


def bench_campaign():
    """The real engine at scale: fair share + result cache, serial exec."""
    campaign = Campaign(seed=SEED)
    synth_campaign_workload(campaign, JOBS, TENANTS, SEED)
    report, elapsed = _time(campaign.run)
    print(f"campaign  {report.jobs:6d} jobs in {elapsed:7.2f}s  "
          f"({report.throughput_jobs_per_s:8.1f} jobs/s)  "
          f"hit_rate={report.hit_rate:.4f}  "
          f"unique={report.unique_designs}  "
          f"p95_wait={report.sim.p95_wait_min:.2f}min")
    return report


def bench_equivalence():
    """Serial vs process-pool on one workload: answers must not move."""
    runs = {}
    for label, workers in (("serial", 0), ("pool", 2)):
        campaign = Campaign(workers=workers, seed=SEED)
        synth_campaign_workload(campaign, EQUIV_JOBS, 3, SEED)
        report = campaign.run()
        jobs = sorted(campaign.queue.jobs(), key=lambda j: j.job_id)
        runs[label] = {
            "signatures": [result_signature(j.result) for j in jobs],
            "flags": [(j.status, j.cache_hit) for j in jobs],
            "hits": report.cache_hits,
            "misses": report.cache_misses,
        }
    identical_signatures = (
        runs["serial"]["signatures"] == runs["pool"]["signatures"]
    )
    identical_accounting = (
        runs["serial"]["flags"] == runs["pool"]["flags"]
        and runs["serial"]["hits"] == runs["pool"]["hits"]
        and runs["serial"]["misses"] == runs["pool"]["misses"]
    )
    identical = identical_signatures and identical_accounting
    print(f"equiv     {EQUIV_JOBS:6d} jobs serial vs 2-worker pool: "
          f"identical={identical}")
    return {
        "jobs": EQUIV_JOBS,
        "serial_hits": runs["serial"]["hits"],
        "pool_hits": runs["pool"]["hits"],
        "identical_signatures": identical_signatures,
        "identical_accounting": identical_accounting,
        "identical": identical,
    }


def main(argv):
    out_path = argv[1] if len(argv) > 1 else "BENCH_campaign.json"

    baseline = bench_baseline()
    report = bench_campaign()
    equivalence = bench_equivalence()

    speedup = (
        report.throughput_jobs_per_s / baseline["throughput_jobs_per_s"]
    )
    payload = {
        "jobs": JOBS,
        "tenants": TENANTS,
        "seed": SEED,
        "baseline_serial_no_cache": baseline,
        "throughput_jobs_per_s": round(report.throughput_jobs_per_s, 2),
        "speedup_vs_serial_no_cache": round(speedup, 2),
        "ci_floor": CI_FLOOR,
        "cache_hit_rate": round(report.hit_rate, 4),
        "unique_designs": report.unique_designs,
        "p95_queue_latency_min": report.sim.p95_wait_min,
        "mean_queue_latency_min": report.sim.mean_wait_min,
        "deadline_misses": report.sim.deadline_misses,
        "serial_vs_pool": equivalence,
    }
    directory = os.path.dirname(out_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nheadline speedup (cached vs serial no-cache): {speedup:.1f}x")
    print(f"JSON written to {out_path}")

    failures = []
    if speedup < CI_FLOOR:
        failures.append(
            f"throughput: {speedup:.1f}x < {CI_FLOOR}x floor over the "
            "serial no-cache baseline"
        )
    if not equivalence["identical"]:
        failures.append("serial and process-pool campaigns diverged")
    if report.failed:
        failures.append(f"{report.failed} jobs failed")
    if failures:
        print("\nBENCH FAILED:\n  " + "\n  ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
