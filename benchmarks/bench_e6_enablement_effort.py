"""E6 — Availability vs enablement effort (paper Section III-D, Rec 4/7).

Paper claims reproduced: the work is dominated by *enablement* (making
tools/PDKs usable), not *availability* (obtaining them); flow templates
(Recommendation 4) cut that effort substantially and a centralized hub
(Recommendation 7) cuts it further.
"""

from conftest import once, print_table

from repro.core import (
    annual_effort_hours,
    availability_vs_enablement,
    backend_coverage,
    effort_breakdown,
    get_template,
)


def test_e6_effort_by_strategy(benchmark):
    def compute():
        return {
            strategy: annual_effort_hours(strategy)
            for strategy in ("manual", "templates", "hub")
        }

    totals = once(benchmark, compute)
    rows = [
        {"strategy": name, "hours_per_year": hours,
         "fte": round(hours / 1600.0, 2)}
        for name, hours in totals.items()
    ]
    print_table("E6: annual enablement effort per research group", rows)

    assert totals["hub"] < totals["templates"] < totals["manual"]
    # Templates alone remove a large share; the hub removes most of it.
    assert totals["templates"] < 0.7 * totals["manual"]
    assert totals["hub"] < 0.3 * totals["manual"]


def test_e6_availability_vs_enablement_split(benchmark):
    split = once(benchmark, availability_vs_enablement)
    print_table("E6b: availability vs enablement share", [split])
    # The paper's point: mere availability is the small part.
    assert split["enablement_share"] > 0.7

    breakdown = effort_breakdown("manual")
    top = max(breakdown, key=breakdown.get)
    print(f"  largest manual sink: {top} ({breakdown[top]} h/yr)")
    assert top in ("flow_scripting", "student_retraining",
                   "tool_technology_config")


def test_e6_template_coverage(benchmark):
    coverage = once(
        benchmark,
        lambda: {
            name: round(backend_coverage(get_template(name)), 3)
            for name in ("digital_asic", "fpga_prototyping",
                         "beginner_tinytapeout")
        },
    )
    rows = [{"template": k, "backend_coverage": v} for k, v in coverage.items()]
    print_table("E6c: backend step coverage per flow template", rows)
    assert coverage["digital_asic"] == 1.0
    assert coverage["fpga_prototyping"] < 1.0
