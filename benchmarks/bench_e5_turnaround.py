"""E5 — Tape-out turnaround vs academic calendars (paper I, III-C).

Paper claim reproduced: "the turn-around times from design to packaged
chips also exceed typical course lengths, thesis or research project
durations" — no node returns packaged silicon within a semester course,
and the shuttle calendar adds waiting time on top.
"""

from conftest import once, print_table

from repro.analytics import course_fit_table
from repro.core import ShuttleProgram, ShuttleProject
from repro.pdk import get_pdk


def test_e5_course_fit(benchmark):
    rows = once(benchmark, course_fit_table)
    table = [
        {
            "pdk": r.pdk,
            "timebox": r.timebox,
            "timebox_days": r.timebox_days,
            "turnaround": r.turnaround_days,
            "fits": r.fits,
            "overshoot": r.overshoot_days,
        }
        for r in rows
    ]
    print_table("E5: fab+packaging turnaround vs academic time boxes", table)

    semester = [r for r in rows if r.timebox == "semester_course"]
    assert all(not r.fits for r in semester)  # the paper's claim
    phd = [r for r in rows if r.timebox == "phd_project_phase"]
    assert all(r.fits for r in phd)  # but research phases can absorb it


def test_e5_shuttle_calendar_adds_wait(benchmark):
    def book():
        program = ShuttleProgram(get_pdk("edu130"), runs_per_year=4)
        return program, program.submit(
            ShuttleProject("thesis_chip", "student", 1.0), ready_day=10
        )

    program, quote = once(benchmark, book)
    wait = quote.launch_day - 10
    total = quote.chips_back_day - 10
    print(f"\n  design ready day 10 -> launch day {quote.launch_day} "
          f"(wait {wait} d) -> chips day {quote.chips_back_day} "
          f"(total {total} d)")
    # Quarterly shuttles add up to ~3 months on top of fab time.
    assert wait > 0
    assert total > get_pdk("edu130").terms.total_turnaround_days
