"""E10 — HLS raises the abstraction level (paper III-B, Recommendation 4).

Paper claims reproduced: high-level synthesis multiplies designer output —
a few lines of Python expand to many RTL lines and hundreds of gates —
and resource-constrained scheduling trades latency for area on demand.
"""

from conftest import once, print_table

from repro.analytics import measure_hls_productivity
from repro.hls import compile_function, run_hls_module
from repro.pdk import get_pdk


def poly5(x, c0, c1, c2, c3, c4):
    acc = c4
    acc = acc * x + c3
    acc = acc * x + c2
    acc = acc * x + c1
    acc = acc * x + c0
    return acc


def dot4(a0, a1, a2, a3, b0, b1, b2, b3):
    return a0 * b0 + a1 * b1 + a2 * b2 + a3 * b3


def test_e10_abstraction_ratio(benchmark):
    library = get_pdk("edu130").library

    def run():
        return [
            measure_hls_productivity(fn, library, width=16)
            for fn in (poly5, dot4)
        ]

    records = once(benchmark, run)
    rows = [
        {
            "function": r.function,
            "hls_lines": r.hls_lines,
            "rtl_lines": r.rtl_lines,
            "gates": r.gate_count,
            "rtl_per_hls": round(r.rtl_lines_per_hls_line, 1),
            "gates_per_hls": round(r.gates_per_hls_line, 1),
            "latency": r.latency_cycles,
        }
        for r in records
    ]
    print_table("E10: HLS abstraction multiplier", rows)
    for record in records:
        assert record.rtl_lines_per_hls_line > 2.0
        assert record.gates_per_hls_line > 20.0


def test_e10_resource_latency_tradeoff(benchmark):
    args = {f"a{i}": 10 + i for i in range(4)}
    args.update({f"b{i}": 3 + i for i in range(4)})
    golden = dot4(**args) & 0xFFFF

    def run():
        rows = []
        for muls in (1, 2, 4):
            hls = compile_function(dot4, resources={"mul": muls}, width=16)
            assert run_hls_module(hls, args) == golden
            rows.append(
                {"multipliers": muls, "latency": hls.latency,
                 "fu_mul": hls.fu_instances["mul"]}
            )
        return rows

    rows = once(benchmark, run)
    print_table("E10b: scheduling under multiplier budgets", rows)
    latencies = [row["latency"] for row in rows]
    assert latencies == sorted(latencies, reverse=True)
    assert rows[0]["fu_mul"] == 1
