"""E7 — Talent pipeline under interventions (paper III-A, Recs 1-3).

Paper claims reproduced: the baseline graduate flow stagnates while
demand grows (METIS/ECSA citations), single interventions help but only
the coordinated combination (the paper's concluding recommendation)
closes most of the designer shortage.
"""

from conftest import once, print_table

from repro.analytics import (
    SCENARIOS,
    required_graduate_multiplier,
    scenario_table,
    simulate_pipeline,
)


def test_e7_scenarios(benchmark):
    rows = once(benchmark, scenario_table)
    print_table("E7: designer shortage in 2036 per intervention scenario", rows)

    gaps = {row["scenario"]: row["final_gap"] for row in rows}
    # Baseline gap grows; every lever helps; coordination wins.
    assert gaps["baseline"] > 0
    for lever in ("outreach_only", "campaigns_only", "funding_only"):
        assert gaps[lever] < gaps["baseline"]
    assert gaps["coordinated"] == min(gaps.values())

    multiplier = required_graduate_multiplier()
    print(f"  graduate flow must grow {multiplier:.1f}x to close the gap")
    assert multiplier > 1.5


def test_e7_baseline_trajectory(benchmark):
    result = once(benchmark, simulate_pipeline)
    rows = [
        {
            "year": r.year,
            "graduates": int(r.new_graduates),
            "designers": int(r.designers),
            "demand": int(r.demand),
            "gap": int(r.gap),
        }
        for r in result.records[::3]
    ]
    print_table("E7b: baseline trajectory (no interventions)", rows)
    # Graduates are flat (the 'stagnated' claim) while the gap widens.
    grads = [r.new_graduates for r in result.records]
    assert max(grads) - min(grads) < 0.05 * max(grads)
    assert result.records[-1].gap > result.records[0].gap


def test_e7_outreach_dominates_single_levers(benchmark):
    def run():
        return {
            name: simulate_pipeline(interventions=iv).final_gap
            for name, iv in SCENARIOS.items()
        }

    gaps = once(benchmark, run)
    # Awareness is the leakiest pipeline stage, so outreach (Rec 1) is the
    # strongest single lever in this calibration.
    single = {k: v for k, v in gaps.items()
              if k.endswith("_only")}
    assert min(single, key=single.get) == "outreach_only"
