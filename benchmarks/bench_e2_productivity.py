"""E2 — The abstraction gap (paper Sections I and III-B).

Paper claims reproduced:
* "A single line of RTL code typically generates only 5 to 20 gates" —
  measured by synthesizing real designs and dividing mapped gates by
  emitted RTL lines.
* "A single line of Python code can generate thousands of assembly
  instructions" — measured on the stack-VM compiler with a vector
  one-liner.
"""

from conftest import once, print_table

from repro.analytics import (
    abstraction_gap,
    max_line_expansion,
    measure_gates_per_line,
)
from repro.pdk import get_pdk

VECTOR_PROGRAM = "vadd(c, a, b, 1000)"


def test_e2_gates_per_rtl_line(benchmark, reference_designs):
    library = get_pdk("edu130").library
    records = once(
        benchmark, lambda: measure_gates_per_line(reference_designs, library)
    )
    rows = [
        {
            "design": r.design,
            "rtl_lines": r.rtl_lines,
            "gates": r.gate_count,
            "gates_per_line": round(r.gates_per_line, 2),
        }
        for r in records
    ]
    print_table("E2a: gates per RTL line (paper band: 5-20)", rows)
    for record in records:
        assert 0.5 < record.gates_per_line < 40.0


def test_e2_software_expansion(benchmark, reference_designs):
    library = get_pdk("edu130").library
    gap = once(
        benchmark,
        lambda: abstraction_gap(reference_designs, library, VECTOR_PROGRAM),
    )
    expansion = max_line_expansion(VECTOR_PROGRAM)
    print_table(
        "E2b: hardware vs software line expansion",
        [
            {
                "gates_per_rtl_line": gap.gates_per_rtl_line,
                "instr_per_py_line": gap.instructions_per_python_line,
                "max_single_line": expansion,
                "sw_hw_ratio": round(gap.ratio, 1),
            }
        ],
    )
    # "Thousands of assembly instructions" from one Python line:
    assert expansion >= 1000
    # The software side out-expands the hardware side by a large factor.
    assert gap.ratio > 10
