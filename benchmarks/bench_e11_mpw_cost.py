"""E11 — MPW cost sharing and sponsorship (paper III-C, Recommendation 6).

Paper claims reproduced: shared MPW runs are orders of magnitude cheaper
than dedicated mask sets but still costly for academia at advanced nodes;
an Efabless-style sponsorship program multiplies tape-outs per euro.
"""

from conftest import once, print_table

from repro.analytics import chips_per_budget, economics_table
from repro.core import ShuttleProgram, ShuttleProject
from repro.pdk import get_pdk


def test_e11_economics_table(benchmark):
    rows = once(benchmark, economics_table)
    table = [
        {
            "pdk": r.pdk,
            "node_nm": r.feature_nm,
            "mask_set_eur": r.mask_set_eur,
            "seat_1mm2_eur": r.seat_1mm2_eur,
            "sharing_x": r.sharing_factor,
            "days": r.turnaround_days,
        }
        for r in rows
    ]
    print_table("E11: MPW economics per node", table)

    by_name = {r.pdk: r for r in rows}
    # Sharing helps everywhere, but advanced nodes stay expensive.
    for row in rows:
        assert row.sharing_factor > 10
    assert by_name["edu045"].seat_1mm2_eur > 5 * by_name["edu130"].seat_1mm2_eur


def test_e11_sponsorship_multiplier(benchmark):
    pdk = get_pdk("edu130")
    budget = 25_000.0

    def run():
        return {
            "unsponsored": chips_per_budget(budget, pdk),
            "half_sponsored": chips_per_budget(budget, pdk,
                                               subsidy_fraction=0.5),
            "fully_sponsored_seats": "unbounded",
        }

    counts = once(benchmark, run)
    print_table(
        "E11b: student tape-outs from a 25k EUR course budget",
        [counts],
    )
    assert counts["half_sponsored"] >= 2 * counts["unsponsored"] - 1


def test_e11_shuttle_fill_economics(benchmark):
    def run():
        program = ShuttleProgram(get_pdk("edu130"), capacity_mm2=20.0)
        for i in range(10):
            program.submit(ShuttleProject(f"uni{i}", f"uni{i}", 2.0))
        run0 = program.runs[0]
        revenue = sum(
            program.seat_price_eur(p.area_mm2) for p in run0.projects
        )
        return run0, revenue

    run0, revenue = once(benchmark, run)
    print(f"\n  run 0: {len(run0.projects)} projects, "
          f"{run0.fill_fraction:.0%} filled, {revenue:.0f} EUR seat revenue "
          f"vs {get_pdk('edu130').terms.mask_set_cost_eur:.0f} EUR mask set")
    assert run0.fill_fraction == 1.0
    # Full shuttles still only recover a fraction of the mask cost: the
    # gap a sponsor or foundry programme must carry (Recommendation 6).
    assert revenue < get_pdk("edu130").terms.mask_set_cost_eur