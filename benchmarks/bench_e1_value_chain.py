"""E1 — Semiconductor value-chain shares (paper Section I).

Paper claims reproduced: design and fabrication are the two largest
value-chain segments (30% / 34% of added value); Europe contributes 10% /
8% to them while holding 40% of equipment and 20% of materials.
"""

from conftest import once, print_table

from repro.analytics import (
    design_gap_table,
    europe_value_capture,
    largest_segments,
    segment,
    uplift_per_segment,
)


def test_e1_value_chain_table(benchmark):
    rows = once(benchmark, design_gap_table)

    # Paper's headline numbers are encoded exactly.
    assert segment("chip_design").value_share == 0.30
    assert segment("fabrication").value_share == 0.34
    assert segment("chip_design").europe_share == 0.10
    assert segment("fabrication").europe_share == 0.08
    # Design and fabrication are the two largest segments.
    assert set(largest_segments(2)) == {"chip_design", "fabrication"}
    # Europe's strengths are upstream (equipment/materials).
    assert segment("equipment").europe_share == 0.40
    assert segment("materials").europe_share == 0.20

    print_table("E1: value chain (shares and gap to a 20% EU position)", rows)
    capture = europe_value_capture()
    print(f"  Europe's overall value capture: {capture:.1%}")
    uplift = uplift_per_segment(0.05)
    best = max(uplift, key=uplift.get)
    print(f"  biggest +5% uplift lever: {best} (+{uplift[best]:.2%} overall)")
    assert best in ("fabrication", "chip_design")
