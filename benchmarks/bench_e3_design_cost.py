"""E3 — Design cost vs technology node (paper Section III-C).

Paper claim reproduced: production-ready design costs range "from $5
million for a 130 nm chip to $725 million for a 2 nm chip"; the fitted
power law also lands in the industry-folklore band at in-between nodes.
"""

import pytest
from conftest import once, print_table

from repro.analytics import (
    affordable_node_nm,
    cost_table,
    design_cost,
    design_cost_usd,
)


def test_e3_cost_curve(benchmark):
    rows = once(benchmark, cost_table)
    print_table("E3: design cost per node (paper anchors: 130nm=$5M, 2nm=$725M)", rows)

    assert design_cost_usd(130.0) == pytest.approx(5e6, rel=1e-9)
    assert design_cost_usd(2.0) == pytest.approx(725e6, rel=1e-9)
    costs = [row["cost_musd"] for row in rows]
    assert costs == sorted(costs)  # strictly harder toward advanced nodes

    budget = 5e5  # a typical funded academic project, EUR~USD
    node = affordable_node_nm(budget)
    print(f"  a 500k academic budget affords a full design only at "
          f">= {node:.0f} nm — the paper's accessibility point")
    assert node > 100.0


def test_e3_cost_breakdown_shift(benchmark):
    breakdown = once(benchmark, lambda: (design_cost(130.0), design_cost(2.0)))
    old, new = breakdown
    rows = []
    for name in old.breakdown_usd:
        rows.append(
            {
                "category": name,
                "share_130nm": round(old.breakdown_usd[name] / old.total_usd, 3),
                "share_2nm": round(new.breakdown_usd[name] / new.total_usd, 3),
            }
        )
    print_table("E3b: cost-category shift toward advanced nodes", rows)
    shares = {r["category"]: r for r in rows}
    assert shares["verification"]["share_2nm"] > shares["verification"]["share_130nm"]
    assert shares["software"]["share_2nm"] > shares["software"]["share_130nm"]
