"""E12 — The open-PDK node gap (paper Section III-C).

Paper claims reproduced: open PDKs cover only mature nodes (180/130 nm
class), "sufficient for educational purposes [but] no suitable
alternatives for chip design research that requires access to newer
technology nodes" — the same RTL on the commercial 45 nm node is clearly
faster, denser and more energy-efficient, which is exactly the pull that
open nodes cannot satisfy.
"""

from conftest import build_mac_pipe, once, print_table

from repro.core import OPEN, FlowOptions, run_flow
from repro.pdk import get_pdk, list_pdks


def test_e12_same_rtl_across_nodes(benchmark):
    module = build_mac_pipe()

    def run():
        results = {}
        for name in list_pdks():
            results[name] = run_flow(
                module, get_pdk(name),
                FlowOptions(preset=OPEN, clock_period_ps=3_000.0,
                            strict_drc=False),
            )
        return results

    results = once(benchmark, run)
    rows = []
    for name in ("edu180", "edu130", "edu045"):
        result = results[name]
        pdk = get_pdk(name)
        row = {
            "pdk": name,
            "node_nm": pdk.node.feature_nm,
            "open": pdk.is_open,
        }
        row.update(result.ppa.as_row())
        rows.append(row)
    print_table("E12: same RTL, every node (open flow preset)", rows)

    by_name = {row["pdk"]: row for row in rows}
    # Advanced node wins every PPA axis at iso-function...
    assert by_name["edu045"]["fmax_mhz"] > by_name["edu130"]["fmax_mhz"] \
        > by_name["edu180"]["fmax_mhz"]
    assert by_name["edu045"]["die_mm2"] < by_name["edu130"]["die_mm2"] \
        < by_name["edu180"]["die_mm2"]
    # ...but is the only node behind NDA/export gates (open == False).
    assert not by_name["edu045"]["open"]
    assert by_name["edu130"]["open"] and by_name["edu180"]["open"]

    speedup = by_name["edu045"]["fmax_mhz"] / by_name["edu130"]["fmax_mhz"]
    print(f"  45nm over 130nm at iso-RTL: {speedup:.2f}x fmax — the research "
          "pull open PDKs cannot satisfy")
    assert speedup > 1.3
