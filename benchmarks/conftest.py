"""Shared fixtures and helpers for the experiment benchmarks.

Every ``bench_e*.py`` module reproduces one experiment from
EXPERIMENTS.md: it computes the experiment's table/series, asserts the
qualitative shape the paper claims (who wins, which direction), prints
the rows, and times the computation via pytest-benchmark.

Run everything:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.hdl import ModuleBuilder, mux


def once(benchmark, fn):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def print_table(title: str, rows: list[dict]) -> None:
    """Uniform experiment-table printer."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    print("  " + " | ".join(f"{k:>16s}" for k in keys))
    for row in rows:
        print("  " + " | ".join(f"{str(row[k]):>16s}" for k in keys))


def build_counter(width: int = 8):
    b = ModuleBuilder(f"counter{width}")
    en = b.input("en", 1)
    count = b.register("count", width)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    return b.build()


def build_accumulator(width: int = 12):
    b = ModuleBuilder(f"accum{width}")
    d = b.input("d", width)
    acc = b.register("acc", width)
    acc.next = (acc + d).trunc(width)
    b.output("q", acc)
    return b.build()


def build_alu_design():
    b = ModuleBuilder("alu_ish")
    a = b.input("a", 8)
    c = b.input("c", 8)
    op = b.input("op", 2)
    add = (a + c).trunc(8)
    sub = (a - c).trunc(8)
    logic = mux(op[0], a & c, a | c)
    arith = mux(op[0], sub, add)
    b.output("y", mux(op[1], logic, arith))
    return b.build()


def build_mac_pipe():
    b = ModuleBuilder("mac_pipe")
    a = b.input("a", 8)
    w = b.input("w", 8)
    product = b.register("product", 16)
    product.next = a * w
    acc = b.register("acc", 16)
    acc.next = (acc + product).trunc(16)
    b.output("y", acc)
    return b.build()


@pytest.fixture(scope="session")
def reference_designs():
    """The small design suite used by synthesis-based experiments."""
    return [build_counter(), build_accumulator(), build_alu_design()]
