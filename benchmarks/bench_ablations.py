"""Ablations of the flow's design choices (DESIGN.md ablation list).

Each ablation switches one engine feature off and measures the damage:
optimization passes, mapper objective, placer algorithm, router rip-up,
CTS buffering, and gate sizing.
"""

from conftest import build_alu_design, build_mac_pipe, once, print_table

from repro.pdk import get_pdk
from repro.pnr import (
    implement,
    make_floorplan,
    place,
    random_place,
    synthesize_clock_tree,
)
from repro.sta import TimingAnalyzer
from repro.synth import lower, optimize, synthesize, tech_map


def test_ablation_opt_passes(benchmark):
    module = build_alu_design()
    netlist = lower(module)

    def run():
        rows = []
        for label, passes in (
            ("none", frozenset()),
            ("fold", frozenset({"fold"})),
            ("fold+strash", frozenset({"fold", "strash"})),
            ("full", frozenset({"fold", "strash", "dce"})),
        ):
            optimized, stats = optimize(netlist, passes=passes)
            rows.append(
                {"passes": label, "gates": len(optimized.gates),
                 "iterations": stats.iterations}
            )
        return rows

    rows = once(benchmark, run)
    print_table("ablation: optimization pass groups", rows)
    gates = [row["gates"] for row in rows]
    assert gates[-1] <= gates[1] <= gates[0]  # each group helps or ties


def test_ablation_mapper_objective(benchmark):
    module = build_alu_design()
    library = get_pdk("edu130").library
    optimized, _ = optimize(lower(module))

    def run():
        area_mapped, _ = tech_map(optimized, library, objective="area")
        delay_mapped, _ = tech_map(optimized, library, objective="delay")
        return area_mapped, delay_mapped

    area_mapped, delay_mapped = once(benchmark, run)
    rows = [
        {"objective": "area", "cells": len(area_mapped.cells),
         "area_um2": round(area_mapped.area_um2(), 1)},
        {"objective": "delay", "cells": len(delay_mapped.cells),
         "area_um2": round(delay_mapped.area_um2(), 1)},
    ]
    print_table("ablation: mapping objective", rows)
    assert area_mapped.area_um2() <= delay_mapped.area_um2()


def test_ablation_placer(benchmark):
    pdk = get_pdk("edu130")
    mapped = synthesize(build_mac_pipe(), pdk.library).mapped
    floorplan = make_floorplan(mapped, pdk.node, utilization=0.35)

    def run():
        quad = place(mapped, floorplan)
        rand = random_place(mapped, floorplan, seed=7)
        return quad, rand

    quad, rand = once(benchmark, run)
    rows = [
        {"placer": "quadratic", "hpwl_um": quad.hpwl_um},
        {"placer": "random", "hpwl_um": rand.hpwl_um},
    ]
    print_table("ablation: placement algorithm", rows)
    improvement = rand.hpwl_um / quad.hpwl_um
    print(f"  quadratic placement improves HPWL {improvement:.2f}x")
    assert improvement > 1.2


def test_ablation_router_ripup(benchmark):
    pdk = get_pdk("edu130")
    mapped = synthesize(build_mac_pipe(), pdk.library).mapped

    def run():
        congested = implement(mapped, pdk, utilization=0.6,
                              router_rip_up=False)
        relaxed = implement(mapped, pdk, utilization=0.6,
                            router_rip_up=True)
        return congested, relaxed

    congested, relaxed = once(benchmark, run)
    rows = [
        {"rip_up": False, "overflow": congested.routing.overflow},
        {"rip_up": True, "overflow": relaxed.routing.overflow},
    ]
    print_table("ablation: router rip-up and re-route", rows)
    assert relaxed.routing.overflow <= congested.routing.overflow


def test_ablation_cts_buffering(benchmark):
    pdk = get_pdk("edu130")
    mapped = synthesize(build_mac_pipe(), pdk.library).mapped
    floorplan = make_floorplan(mapped, pdk.node, utilization=0.35)
    placement = place(mapped, floorplan)

    def run():
        buffered = synthesize_clock_tree(placement, mapped.library,
                                         pdk.node, buffering=True)
        bare = synthesize_clock_tree(placement, mapped.library,
                                     pdk.node, buffering=False)
        return buffered, bare

    buffered, bare = once(benchmark, run)
    rows = [
        {"buffering": True, "skew_ps": round(buffered.skew_ps, 2),
         "buffers": len(buffered.buffers)},
        {"buffering": False, "skew_ps": round(bare.skew_ps, 2),
         "buffers": 0},
    ]
    print_table("ablation: clock-tree buffering", rows)
    assert buffered.skew_ps <= bare.skew_ps


def test_ablation_gate_sizing(benchmark):
    pdk = get_pdk("edu130")
    module = build_mac_pipe()

    def run():
        unsized = synthesize(module, pdk.library, sizing=False)
        sized = synthesize(module, pdk.library, sizing=True,
                           max_load_per_drive_ff=2.5)
        t_unsized = TimingAnalyzer(unsized.mapped, pdk.node).minimum_period_ps()
        t_sized = TimingAnalyzer(sized.mapped, pdk.node).minimum_period_ps()
        return unsized, sized, t_unsized, t_sized

    unsized, sized, t_unsized, t_sized = once(benchmark, run)
    rows = [
        {"sizing": False, "min_period_ps": round(t_unsized, 1),
         "area_um2": round(unsized.mapped.area_um2(), 1)},
        {"sizing": True, "min_period_ps": round(t_sized, 1),
         "area_um2": round(sized.mapped.area_um2(), 1)},
    ]
    print_table("ablation: gate sizing", rows)
    assert t_sized < t_unsized  # faster
    assert sized.mapped.area_um2() > unsized.mapped.area_um2()  # for area
