"""Interactive edit-loop benchmark: Workspace.edit vs full rebuild.

Opens a :class:`repro.inter.Workspace` on the catalogue's largest
design (the composed ``soc``) and measures the cost of one-module edits
— the seven-segment decoder re-encode that ``repro edit --demo`` also
applies — against a full from-scratch ``run_flow``:

* **Speedup** — the best of three real edits (recode, revert, recode;
  every one changes logic and re-verifies) against one full flat flow
  over the same design.  Hash-diff dirty sets, memoized shard
  synthesis, region-stable placement and verified-replay routing are
  what make the gap.
* **Byte identity** — the incremental result must equal a from-scratch
  rebuild of the edited design bit for bit (GDS compared), because
  every eco engine is deterministic-modulo-memo.  A fast-but-different
  edit path would be a bug, not an optimization.
* **Proof** — every edit must be proven by the cone-limited LEC (no
  fallback rebuilds on the happy path).

Writes ``BENCH_incremental.json`` and exits nonzero if the edit speedup
drops below the CI floor (10x), any edit falls back, or the GDS
diverges from the from-scratch rebuild.

Usage::

    python benchmarks/bench_incremental.py [BENCH_incremental.json]
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import FlowOptions, run_flow
from repro.inter import Workspace
from repro.ip import make_soc
from repro.ip.soc import sevenseg_recode_rtl
from repro.pdk import get_pdk

CI_FLOOR = 10.0
CLOCK_PERIOD_PS = 6_000.0
EDIT_MODULE = "sevenseg"


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def main(argv: list[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_incremental.json"
    pdk = get_pdk("edu130")
    soc = make_soc().module
    options = FlowOptions(clock_period_ps=CLOCK_PERIOD_PS)

    classic, t_classic = _time(lambda: run_flow(soc, pdk, options=options))
    assert classic.ok, "full flow failed on the bench design"
    cells = len(classic.synthesis.mapped.cells)
    print(f"full rebuild: {t_classic * 1e3:8.0f} ms  ({cells} cells)")

    ws, t_open = _time(lambda: Workspace.open(soc, pdk, options=options))
    assert ws.result.ok, "workspace open failed on the bench design"
    print(f"open:         {t_open * 1e3:8.0f} ms")

    recoded = sevenseg_recode_rtl()
    original = ws.rtl_of(EDIT_MODULE)
    edits = []
    for index, rtl in enumerate((recoded, original, recoded)):
        report, t_edit = _time(lambda: ws.edit(EDIT_MODULE, rtl))
        assert not report.clean, "bench edit canonicalized to a no-op"
        assert report.fallback is None, (
            f"edit {index} fell back to a full rebuild: {report.fallback}"
        )
        assert report.lec is not None and report.lec.equivalent, (
            f"edit {index} was not proven by the cone-limited LEC"
        )
        edits.append(
            {
                "edit_ms": round(t_edit * 1e3, 3),
                "dirty": sorted(report.dirty),
                "cones": len(report.cones),
            }
        )
        print(
            f"edit {index}:       {t_edit * 1e3:8.0f} ms  "
            f"dirty={sorted(report.dirty)} cones={len(report.cones)}"
        )

    best_edit_s = min(e["edit_ms"] for e in edits) / 1e3
    speedup = t_classic / best_edit_s
    print(f"speedup: {speedup:.1f}x (floor {CI_FLOOR}x)")

    # The final workspace state holds the recoded design; a from-scratch
    # rebuild of exactly that design must produce identical bytes.
    cold, t_cold = _time(
        lambda: Workspace.open(ws.design, pdk, options=options)
    )
    identical = ws.result.gds_bytes == cold.result.gds_bytes
    print(f"from-scratch rebuild of edited design: {t_cold * 1e3:.0f} ms, "
          f"GDS identical: {identical}")

    record = {
        "design": soc.name,
        "cells": cells,
        "full_rebuild_ms": round(t_classic * 1e3, 3),
        "open_ms": round(t_open * 1e3, 3),
        "edits": edits,
        "best_edit_ms": round(best_edit_s * 1e3, 3),
        "speedup": round(speedup, 2),
        "ci_floor": CI_FLOOR,
        "gds_identical": identical,
        "ok": bool(identical and speedup >= CI_FLOOR),
    }
    directory = os.path.dirname(out_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")

    if not identical:
        print("FAIL: incremental GDS diverges from from-scratch rebuild",
              file=sys.stderr)
        return 1
    if speedup < CI_FLOOR:
        print(f"FAIL: edit speedup {speedup:.1f}x below floor {CI_FLOOR}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
