"""E4 — Open-source vs commercial flow PPA gap (paper Section III-D).

Paper claim reproduced: "open-source flows are not yet competitive with
proprietary ones in terms of PPA metrics."  Both presets run the same
engines; the commercial preset enables the tuned optimizations (gate
sizing, delay-aware thresholds, detailed placement, tighter utilization)
and wins on frequency at equal function.
"""

from conftest import build_mac_pipe, once, print_table

from repro.core import COMMERCIAL, OPEN, FlowOptions, run_flow
from repro.pdk import get_pdk


def test_e4_open_vs_commercial(benchmark):
    module = build_mac_pipe()
    pdk = get_pdk("edu130")

    def run_both():
        return (
            run_flow(module, pdk,
                     FlowOptions(preset=OPEN, strict_drc=False)),
            run_flow(module, pdk,
                     FlowOptions(preset=COMMERCIAL, strict_drc=False)),
        )

    open_result, commercial_result = once(benchmark, run_both)

    rows = []
    for result in (open_result, commercial_result):
        row = {"preset": result.preset.name}
        row.update(result.ppa.as_row())
        rows.append(row)
    print_table("E4: PPA gap, same RTL and engines, different preset", rows)

    gap = commercial_result.ppa.fmax_mhz / open_result.ppa.fmax_mhz
    print(f"  commercial preset fmax advantage: {gap:.2f}x")

    # Who wins: the commercial preset on performance (the paper's gap).
    assert commercial_result.ppa.fmax_mhz > open_result.ppa.fmax_mhz
    # By a visible but not absurd factor (the gap is real, not 10x).
    assert 1.02 < gap < 3.0
    # Both produce functionally equivalent silicon.
    assert open_result.synthesis.equivalence.passed
    assert commercial_result.synthesis.equivalence.passed
    # The speed is bought with area — the classic trade.
    assert commercial_result.ppa.area_um2 >= open_result.ppa.area_um2
