"""E8 — Target-group-oriented enablement (paper Recommendation 8).

Paper claims reproduced: one size does not fit all — the tier policies
route beginners to the locked 180 nm pathway, intermediates to the open
PDK + open flow combination, and only advanced users (who can clear the
Section III-C gauntlet) to commercial nodes; legal friction is zero on
open nodes and substantial on the commercial one.
"""

from conftest import build_counter, once, print_table

from repro.core import (
    AccessTier,
    EnablementHub,
    HubError,
    ResidencyStatus,
    User,
    access_friction,
    policy_for,
)
from repro.pdk import get_pdk, list_pdks


def test_e8_tier_matrix(benchmark):
    def compute():
        rows = []
        for tier in AccessTier:
            policy = policy_for(tier)
            rows.append(
                {
                    "tier": tier.value,
                    "pdks": ",".join(policy.allowed_pdks),
                    "presets": ",".join(policy.allowed_presets),
                    "max_mm2": policy.max_die_area_mm2,
                    "subsidized": policy.shuttle_subsidized,
                }
            )
        return rows

    rows = once(benchmark, compute)
    print_table("E8: tier policy matrix (Recommendation 8)", rows)

    beginner = policy_for(AccessTier.BEGINNER)
    advanced = policy_for(AccessTier.ADVANCED)
    assert len(beginner.allowed_pdks) < len(advanced.allowed_pdks)
    assert beginner.shuttle_subsidized and not advanced.shuttle_subsidized


def test_e8_friction_by_node(benchmark):
    def compute():
        fresh = User(name="student", institution="uni")
        restricted = User(name="visitor", institution="uni",
                          residency=ResidencyStatus.RESTRICTED)
        rows = []
        for name in list_pdks():
            pdk = get_pdk(name)
            rows.append(
                {
                    "pdk": name,
                    "open": pdk.is_open,
                    "friction_fresh": access_friction(fresh, pdk),
                    "friction_restricted": access_friction(restricted, pdk),
                }
            )
        return rows

    rows = once(benchmark, compute)
    print_table("E8b: administrative friction per node (hurdle count)", rows)
    by_name = {r["pdk"]: r for r in rows}
    assert by_name["edu130"]["friction_fresh"] == 0
    assert by_name["edu180"]["friction_fresh"] == 0
    assert by_name["edu045"]["friction_fresh"] >= 3
    # Export control hits restricted users only on the commercial node.
    assert (by_name["edu045"]["friction_restricted"]
            > by_name["edu045"]["friction_fresh"])


def test_e8_hub_enforces_tiers(benchmark):
    def run():
        hub = EnablementHub()
        hub.enroll(User(name="pupil", institution="school"),
                   AccessTier.BEGINNER)
        record = hub.run_design("pupil", build_counter(4), "edu180",
                                clock_period_ps=20_000.0)
        blocked = False
        try:
            hub.run_design("pupil", build_counter(4), "edu045")
        except HubError:
            blocked = True
        return record, blocked

    record, blocked = once(benchmark, run)
    print(f"\n  beginner flow on edu180: {record.result.summary()}")
    assert record.result.ok
    assert blocked  # the commercial node is out of the beginner pathway
