"""Engine performance benchmarks: how fast the flow itself runs.

Not a paper experiment — these time the toolkit's own hot paths (RTL
simulation, synthesis, placement, routing, GDS export) so regressions in
the engines are visible.  Unlike the experiment benches these use real
repeated measurement rounds.
"""

from conftest import build_alu_design, build_counter, build_mac_pipe

from repro.core import OPEN, FlowOptions, run_flow
from repro.layout import build_chip_gds, write_gds
from repro.pdk import get_pdk
from repro.pnr import implement, make_floorplan, place
from repro.sim import Simulator
from repro.synth import lower, optimize, synthesize


def test_perf_rtl_simulation(benchmark):
    sim = Simulator(build_counter(16))
    sim.set("en", 1)
    benchmark(sim.step, 100)


def test_perf_lower_and_optimize(benchmark):
    module = build_alu_design()

    def run():
        return optimize(lower(module))

    netlist, _ = benchmark(run)
    assert netlist.gates


def test_perf_synthesis(benchmark):
    library = get_pdk("edu130").library
    module = build_mac_pipe()
    result = benchmark(synthesize, module, library)
    assert result.mapped.cells


def test_perf_detailed_place(benchmark):
    """Detailed placement with the incremental-HPWL swap kernel."""
    pdk = get_pdk("edu130")
    mapped = synthesize(build_alu_design(), pdk.library).mapped
    floorplan = make_floorplan(mapped, pdk.node)

    def run():
        return place(mapped, floorplan, detailed_passes=2, seed=1)

    placement = benchmark(run)
    assert placement.hpwl_um > 0


def test_perf_backend(benchmark):
    pdk = get_pdk("edu130")
    mapped = synthesize(build_alu_design(), pdk.library).mapped
    design = benchmark.pedantic(
        implement, args=(mapped, pdk), rounds=3, iterations=1
    )
    assert design.routing.nets


def test_perf_gds_export(benchmark):
    pdk = get_pdk("edu130")
    mapped = synthesize(build_counter(), pdk.library).mapped
    design = implement(mapped, pdk)

    def export():
        return write_gds(build_chip_gds(design))

    data = benchmark(export)
    assert len(data) > 100


def test_perf_full_flow(benchmark):
    module = build_counter()
    pdk = get_pdk("edu130")
    result = benchmark.pedantic(
        lambda: run_flow(module, pdk, FlowOptions(preset=OPEN)),
        rounds=3, iterations=1,
    )
    assert result.ok
