"""Extraction benchmark: GDS-in netlist recovery throughput.

Times the two halves of the GDS-in signoff path
(:mod:`repro.extract`) on a spread of catalogue designs:

* **extract_netlist** — stream parse + fingerprint identification +
  flatten + union-find connectivity, reported as shapes/s (the
  geometry-bound half).
* **run_lvs** — the full gate: extraction, census pre-check, net-by-net
  comparison, and the LEC miter against the mapped netlist.

Every run must come back clean and LEC-equivalent — a fast extraction
that recovers the wrong netlist is a bug, not a result.  Writes
``BENCH_extract.json`` and exits nonzero on any unclean verdict.

Usage::

    python benchmarks/bench_extract.py [BENCH_extract.json]
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.extract import extract_netlist, run_lvs
from repro.ip.catalog import generate
from repro.layout import build_chip_gds, write_gds
from repro.pdk import get_pdk
from repro.pnr import implement
from repro.synth import synthesize

DESIGNS = ("counter", "lfsr", "alu", "fir", "tinycpu", "soc")


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_design(name, pdk):
    module = generate(name).module
    mapped = synthesize(module, pdk.library, verify=False).mapped
    physical = implement(mapped, pdk)
    data = write_gds(build_chip_gds(physical))
    pins = {pin.name for pin in physical.floorplan.io_pins}

    extraction, extract_s = _time(lambda: extract_netlist(data, pdk))
    report, lvs_s = _time(lambda: run_lvs(
        data, mapped, pdk, expected_pins=pins))
    row = {
        "design": name,
        "cells": len(mapped.cells),
        "shapes": extraction.shapes,
        "nets": extraction.n_nets,
        "gds_kib": round(len(data) / 1024, 1),
        "extract_s": round(extract_s, 4),
        "shapes_per_sec": round(extraction.shapes / extract_s),
        "lvs_s": round(lvs_s, 4),
        "clean": report.clean,
        "lec_equivalent": report.lec_equivalent,
    }
    print(f"  {name:>10s}: {row['shapes']:>6d} shapes, "
          f"{row['nets']:>4d} nets, extract {extract_s:.3f}s "
          f"({row['shapes_per_sec']} shapes/s), "
          f"lvs+lec {lvs_s:.3f}s, "
          f"{'CLEAN' if report.clean else 'DIRTY'}")
    return row


def main(argv):
    out_path = argv[1] if len(argv) > 1 else "BENCH_extract.json"
    pdk = get_pdk("edu130")

    print("GDS-in extraction benchmark (edu130):")
    rows = [bench_design(name, pdk) for name in DESIGNS]

    payload = {
        "pdk": "edu130",
        "designs": rows,
        "total_shapes": sum(r["shapes"] for r in rows),
        "total_extract_s": round(sum(r["extract_s"] for r in rows), 4),
        "total_lvs_s": round(sum(r["lvs_s"] for r in rows), 4),
    }
    directory = os.path.dirname(out_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"JSON written to {out_path}")

    failures = [
        f"{r['design']}: not clean" for r in rows if not r["clean"]
    ] + [
        f"{r['design']}: LEC not equivalent" for r in rows
        if r["lec_equivalent"] is not True
    ]
    if failures:
        print("\nBENCH FAILED:\n  " + "\n  ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
