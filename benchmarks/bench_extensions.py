"""Extension experiments beyond the E1-E12 core set.

* **X1 analog sizing** — Section III-B's "analog sizing cannot be easily
  automated": measure the search effort per target gain.
* **X2 scan-chain DFT** — test-infrastructure overhead and the coverage
  it buys (Section III-C's testability concern).
* **X3 memory generator** — the compiled-SRAM datasheet across nodes,
  the "memory generator" enablement artifact of Section III-D.
* **X4 outreach portfolios** — cost-effectiveness of Recommendation 1-3
  program portfolios feeding the workforce model.
"""

from conftest import build_counter, once, print_table

from repro.analog import size_common_source
from repro.analytics import simulate_pipeline
from repro.core.outreach import (
    PROGRAMS,
    best_value_programs,
    portfolio_cost,
    portfolio_to_interventions,
)
from repro.pdk import get_pdk, sweep_table
from repro.synth import (
    check_equivalence,
    coverage_estimate,
    insert_scan_chain,
    synthesize,
)


def test_x1_analog_sizing_effort(benchmark):
    def run():
        rows = []
        for target in (2.0, 4.0, 6.0, 8.0):
            design = size_common_source(target_gain=target)
            rows.append(
                {
                    "target_gain": target,
                    "w_over_l": round(design.w_over_l, 2),
                    "id_ua": round(design.drain_current * 1e6, 1),
                    "achieved": round(design.gain, 2),
                    "search_steps": design.iterations,
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table("X1: common-source sizing effort per gain target", rows)
    for row in rows:
        assert abs(row["achieved"] - row["target_gain"]) / row["target_gain"] < 0.06
        assert row["search_steps"] > 1  # sizing is a search (III-B)
    widths = [row["w_over_l"] for row in rows]
    assert widths == sorted(widths)  # more gain needs more device


def test_x2_scan_chain_overhead(benchmark):
    def run():
        rows = []
        for width in (4, 8, 16):
            module = build_counter(width)
            mapped = synthesize(module, get_pdk("edu130").library).mapped
            before_coverage = coverage_estimate(mapped, scanned=False)
            report = insert_scan_chain(mapped)
            equivalent = check_equivalence(module, mapped, cycles=30).passed
            rows.append(
                {
                    "flops": report.chain_length,
                    "area_overhead_pct": round(100 * report.area_overhead, 1),
                    "coverage_before": before_coverage,
                    "coverage_after": coverage_estimate(mapped, scanned=True),
                    "functional_equiv": equivalent,
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table("X2: scan-chain cost vs stuck-at coverage", rows)
    for row in rows:
        assert row["functional_equiv"]
        assert row["coverage_after"] > row["coverage_before"]
        assert 0 < row["area_overhead_pct"] < 60


def test_x3_memory_generator_datasheet(benchmark):
    def run():
        rows = []
        for pdk_name in ("edu180", "edu130", "edu045"):
            node = get_pdk(pdk_name).node
            for macro in sweep_table(node, ((64, 16), (1024, 32))):
                rows.append(
                    {
                        "node": pdk_name,
                        "config": macro.name,
                        "area_um2": macro.area_um2,
                        "access_ps": macro.access_time_ps,
                        "kb_per_mm2": round(macro.bit_density_kb_per_mm2, 1),
                    }
                )
        return rows

    rows = once(benchmark, run)
    print_table("X3: compiled-SRAM datasheet across nodes", rows)
    by_key = {(r["node"], r["config"]): r for r in rows}
    # Density improves monotonically toward advanced nodes.
    assert (by_key[("edu045", "sram_1024x32")]["kb_per_mm2"]
            > by_key[("edu130", "sram_1024x32")]["kb_per_mm2"]
            > by_key[("edu180", "sram_1024x32")]["kb_per_mm2"])


def test_x4_outreach_portfolio_value(benchmark):
    def run():
        portfolios = {
            "best_value_trio": best_value_programs(count=3),
            "contest_only": ["olympiad_contest"],
            "everything": [p.name for p in PROGRAMS],
        }
        rows = []
        for name, programs in portfolios.items():
            interventions = portfolio_to_interventions(programs)
            result = simulate_pipeline(interventions=interventions)
            rows.append(
                {
                    "portfolio": name,
                    "annual_cost_keur": round(portfolio_cost(programs) / 1e3),
                    "final_gap": round(result.final_gap),
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table("X4: outreach portfolios vs 2036 designer gap", rows)
    by_name = {r["portfolio"]: r for r in rows}
    # Broad low-barrier programs beat the top-performer contest (Rec 1).
    assert (by_name["best_value_trio"]["final_gap"]
            < by_name["contest_only"]["final_gap"])
    assert by_name["everything"]["final_gap"] == min(
        r["final_gap"] for r in rows
    )


def test_x5_chiplet_crossover(benchmark):
    from repro.analytics.chiplets import (
        chiplet_cost,
        comparison_table,
        crossover_area_mm2,
        monolithic_cost,
    )

    def run():
        return comparison_table(), crossover_area_mm2(n_chiplets=4)

    rows, crossover = once(benchmark, run)
    print_table("X5: monolithic vs 4-chiplet cost (III-D)", rows)
    print(f"  crossover: chiplets win above ~{crossover:.0f} mm2 of logic")
    assert rows[0]["winner"] == "monolithic"
    assert rows[-1]["winner"] == "chiplet"
    assert 50 < crossover < 800
    # The chiplet advantage grows with system size (yield economics).
    ratios = [r["mono_cost"] / r["chiplet_cost"] for r in rows]
    assert ratios == sorted(ratios)
    # But disintegration is not free: silicon area goes up.
    assert chiplet_cost(400.0, 4).total_silicon_mm2 > monolithic_cost(
        400.0
    ).total_silicon_mm2


def test_x6_rram_nonidealities(benchmark):
    import numpy as np

    from repro.analog.rram import RramDeviceModel, mvm_error

    weights = np.random.default_rng(11).uniform(0, 1, (16, 8))
    inputs = np.random.default_rng(12).uniform(0, 1, 16)

    def run():
        rows = []
        for levels in (2, 4, 16, 64):
            for sigma in (0.0, 0.2):
                device = RramDeviceModel(levels=levels,
                                         variation_sigma=sigma)
                rows.append(
                    {
                        "levels": levels,
                        "variation": sigma,
                        "rms_error": round(
                            mvm_error(weights, inputs, device, seed=5), 4
                        ),
                    }
                )
        return rows

    rows = once(benchmark, run)
    print_table("X6: RRAM crossbar MVM error vs device quality", rows)
    ideal = {r["levels"]: r["rms_error"] for r in rows
             if r["variation"] == 0.0}
    assert ideal[64] < ideal[4] < ideal[2]
    noisy = {r["levels"]: r["rms_error"] for r in rows
             if r["variation"] == 0.2}
    assert noisy[64] > ideal[64]
