"""E9 — FPGAs only partially cover the design flow (paper Section III-B).

Paper claims reproduced: the same RTL maps onto an FPGA for prototyping,
but the FPGA path exercises only a fraction of the ASIC flow steps — no
floorplanning skills, no CTS, no DRC, no GDSII, no tape-out.
"""

from conftest import build_alu_design, build_counter, once, print_table

from repro.core import FLOW_ORDER
from repro.fpga import coverage_fraction, flow_coverage, get_device, lut_map
from repro.synth import lower, optimize


def test_e9_step_coverage(benchmark):
    coverage = once(benchmark, flow_coverage)
    rows = [
        {"step": step.value,
         "fpga_covers": coverage.get(step.value, False)}
        for step in FLOW_ORDER
    ]
    print_table("E9: ASIC flow steps covered by the FPGA path", rows)

    fraction = coverage_fraction()
    print(f"  FPGA path covers {fraction:.0%} of the flow")
    assert 0.3 < fraction < 0.9  # partial, as the paper says
    assert coverage["synthesis"]
    assert not coverage["gds_export"]
    assert not coverage["clock_tree_synthesis"]
    assert not coverage["tapeout"]


def test_e9_same_rtl_maps_to_luts(benchmark):
    def run():
        rows = []
        for module in (build_counter(), build_alu_design()):
            netlist, _ = optimize(lower(module))
            mapping = lut_map(netlist, get_device("edu-ice40"))
            rows.append(
                {
                    "design": module.name,
                    "gates": len(netlist.gates),
                    "luts": mapping.luts,
                    "ffs": mapping.ffs,
                    "depth": mapping.depth,
                    "fits": mapping.fits,
                    "fmax_mhz": round(mapping.fmax_mhz, 1),
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table("E9b: LUT mapping of the reference designs", rows)
    for row in rows:
        assert row["fits"]
        assert row["luts"] <= row["gates"]  # K-LUT packing compresses
